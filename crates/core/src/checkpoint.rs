//! Checkpoint/restore hooks on [`Kfac`] for elastic world resizing.
//!
//! A checkpoint captures the *complete* preconditioner state — running
//! factor averages (square form, regardless of the resident layout), cached
//! eigendecompositions, direct inverses, EK-FAC corrected moments, and the
//! optimizer step counter — on **every** rank, so a paused job can resume
//! on a *different* world size: [`Kfac::restore`] re-runs LPT placement and
//! strategy resolution for the new world and re-populates exactly the state
//! each new rank's residency rules call for.
//!
//! Distributed state is scattered (sharded factors live only on their
//! eigendecomposition workers; eigen caches only on gradient workers), so
//! [`Kfac::checkpoint_state`] runs a small collective protocol: one
//! allgather of per-layer presence flags, then one broadcast per present
//! field from its lowest-rank holder. Every holder of a field holds bitwise
//! identical values (they arrived by broadcast or identical deterministic
//! compute), so the choice of root does not affect the checkpoint bits.
//!
//! Factors are stored in **square** form: packed↔square conversion mirrors
//! bit-equal elements (`pack_upper`/`unpack_upper` are mirrors, flat packing
//! is the identity), so a factor checkpointed from a packed shard and
//! re-packed on restore — possibly on a different rank, under a different
//! strategy — is bitwise identical to one that never left packed space.

use kaisa_comm::Communicator;
use kaisa_linalg::pack_upper;
use kaisa_nn::Model;
use kaisa_tensor::Matrix;

use crate::config::KfacConfig;
use crate::preconditioner::Kfac;
use crate::state::{KfacLayerState, PackedFactor};
use crate::strategy::FactorReduction;

/// Number of per-layer optional state fields a checkpoint carries.
const FIELD_COUNT: usize = 10;

/// One layer's checkpointed K-FAC state. Every field is optional — absent
/// fields were not yet populated anywhere in the world (e.g. no
/// eigendecomposition step has run).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCheckpoint {
    /// Layer name (diagnostics and integrity checks).
    pub name: String,
    /// `A` factor dimension.
    pub a_dim: usize,
    /// `G` factor dimension.
    pub g_dim: usize,
    /// Running `A` average in square row-major form (`a_dim²`).
    pub factor_a: Option<Vec<f32>>,
    /// Running `G` average in square row-major form (`g_dim²`).
    pub factor_g: Option<Vec<f32>>,
    /// Eigenvectors of `A` (`a_dim²`).
    pub qa: Option<Vec<f32>>,
    /// Eigenvectors of `G` (`g_dim²`).
    pub qg: Option<Vec<f32>>,
    /// Precomputed damped reciprocal outer product (`g_dim × a_dim`).
    pub outer: Option<Vec<f32>>,
    /// Eigenvalues of `A` (`a_dim`; the non-precompute ablation path).
    pub va: Option<Vec<f32>>,
    /// Eigenvalues of `G` (`g_dim`).
    pub vg: Option<Vec<f32>>,
    /// Damped direct inverse of `A` (`a_dim²`; the `use_eigen=false` path).
    pub inv_a: Option<Vec<f32>>,
    /// Damped direct inverse of `G` (`g_dim²`).
    pub inv_g: Option<Vec<f32>>,
    /// EK-FAC corrected second moments (`g_dim × a_dim`).
    pub ekfac_scale: Option<Vec<f32>>,
}

impl LayerCheckpoint {
    fn new(name: String, a_dim: usize, g_dim: usize) -> Self {
        LayerCheckpoint {
            name,
            a_dim,
            g_dim,
            factor_a: None,
            factor_g: None,
            qa: None,
            qg: None,
            outer: None,
            va: None,
            vg: None,
            inv_a: None,
            inv_g: None,
            ekfac_scale: None,
        }
    }

    /// Total checkpointed f32 elements across present fields.
    pub fn element_count(&self) -> usize {
        let opt = |v: &Option<Vec<f32>>| v.as_ref().map_or(0, Vec::len);
        opt(&self.factor_a)
            + opt(&self.factor_g)
            + opt(&self.qa)
            + opt(&self.qg)
            + opt(&self.outer)
            + opt(&self.va)
            + opt(&self.vg)
            + opt(&self.inv_a)
            + opt(&self.inv_g)
            + opt(&self.ekfac_scale)
    }
}

/// A world-size-independent snapshot of a [`Kfac`] instance: the step
/// counter plus every layer's accumulated state in canonical (square,
/// rank-agnostic) form. Identical on every rank after
/// [`Kfac::checkpoint_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct KfacCheckpoint {
    /// Completed preconditioner steps — restores the `factor_update_freq` /
    /// `inv_update_freq` phase exactly.
    pub steps: u64,
    /// Per-layer state in registration order.
    pub layers: Vec<LayerCheckpoint>,
}

impl KfacCheckpoint {
    /// Total checkpointed f32 elements (all layers, present fields only).
    pub fn element_count(&self) -> usize {
        self.layers.iter().map(LayerCheckpoint::element_count).sum()
    }
}

/// Element count of checkpoint field `f` for the given factor dimensions.
fn field_len(f: usize, a_dim: usize, g_dim: usize) -> usize {
    match f {
        0 | 2 | 7 => a_dim * a_dim, // factor_a, qa, inv_a
        1 | 3 | 8 => g_dim * g_dim, // factor_g, qg, inv_g
        4 | 9 => g_dim * a_dim,     // outer, ekfac_scale
        5 => a_dim,                 // va
        6 => g_dim,                 // vg
        _ => unreachable!("checkpoint field index out of range"),
    }
}

/// Whether this rank holds checkpoint field `f` for layer state `s`.
fn field_present(s: &KfacLayerState, f: usize) -> bool {
    match f {
        0 => s.factor_a.is_some() || s.packed_a.is_some(),
        1 => s.factor_g.is_some() || s.packed_g.is_some(),
        2 => s.qa.is_some(),
        3 => s.qg.is_some(),
        4 => s.outer.is_some(),
        5 => s.va.is_some(),
        6 => s.vg.is_some(),
        7 => s.inv_a.is_some(),
        8 => s.inv_g.is_some(),
        9 => s.ekfac_scale.is_some(),
        _ => unreachable!("checkpoint field index out of range"),
    }
}

/// Extract checkpoint field `f` from a rank that holds it, in canonical
/// square form (factors unpack from the shard-resident layout if needed).
fn extract_field(s: &KfacLayerState, f: usize) -> Vec<f32> {
    let mat = |m: &Option<Matrix>| m.as_ref().expect("field flagged present").as_slice().to_vec();
    match f {
        0 => s.square_factor_a().into_vec(),
        1 => s.square_factor_g().into_vec(),
        2 => mat(&s.qa),
        3 => mat(&s.qg),
        4 => mat(&s.outer),
        5 => s.va.clone().expect("field flagged present"),
        6 => s.vg.clone().expect("field flagged present"),
        7 => mat(&s.inv_a),
        8 => mat(&s.inv_g),
        9 => mat(&s.ekfac_scale),
        _ => unreachable!("checkpoint field index out of range"),
    }
}

/// Store a broadcast field into the layer entry.
fn set_field(entry: &mut LayerCheckpoint, f: usize, buf: Vec<f32>) {
    match f {
        0 => entry.factor_a = Some(buf),
        1 => entry.factor_g = Some(buf),
        2 => entry.qa = Some(buf),
        3 => entry.qg = Some(buf),
        4 => entry.outer = Some(buf),
        5 => entry.va = Some(buf),
        6 => entry.vg = Some(buf),
        7 => entry.inv_a = Some(buf),
        8 => entry.inv_g = Some(buf),
        9 => entry.ekfac_scale = Some(buf),
        _ => unreachable!("checkpoint field index out of range"),
    }
}

/// Re-pack a canonical square factor into the wire layout the shard owner
/// keeps resident. Bitwise inverse of the unpacking `checkpoint_state`
/// performed: `pack_upper(unpack_upper(x)) == x` element for element.
fn pack_square(square: &[f32], dim: usize, triangular: bool) -> PackedFactor {
    let data = if triangular {
        pack_upper(&Matrix::from_vec(dim, dim, square.to_vec()))
    } else {
        square.to_vec()
    };
    PackedFactor { data, triangular }
}

impl Kfac {
    /// Capture the complete preconditioner state into a rank-agnostic
    /// checkpoint. Collective: every rank must call it, and every rank
    /// returns the identical checkpoint.
    ///
    /// # Panics
    /// If a runtime step is in flight or the cross-iteration window is
    /// non-empty — call [`Kfac::flush`] first to reach a pause point.
    pub fn checkpoint_state(&self, comm: &dyn Communicator) -> KfacCheckpoint {
        assert!(
            self.runtime_step.is_none() && self.window.is_empty(),
            "checkpoint requires a quiescent preconditioner — call Kfac::flush first"
        );
        let n = self.states.len();
        let mut flags = vec![0.0f32; n * FIELD_COUNT];
        for (i, s) in self.states.iter().enumerate() {
            for f in 0..FIELD_COUNT {
                if field_present(s, f) {
                    flags[i * FIELD_COUNT + f] = 1.0;
                }
            }
        }
        // One allgather tells every rank which fields exist where; the
        // lowest-rank holder then broadcasts each present field (holders all
        // carry identical bits, so any root works — lowest is deterministic).
        let all_flags = comm.allgather(&flags);
        let world = comm.world_size();
        debug_assert_eq!(all_flags.len(), world * n * FIELD_COUNT);

        let mut layers = Vec::with_capacity(n);
        for (i, s) in self.states.iter().enumerate() {
            let mut entry = LayerCheckpoint::new(s.name.clone(), s.a_dim, s.g_dim);
            for f in 0..FIELD_COUNT {
                let root =
                    (0..world).find(|r| all_flags[r * n * FIELD_COUNT + i * FIELD_COUNT + f] > 0.5);
                let Some(root) = root else { continue };
                let len = field_len(f, s.a_dim, s.g_dim);
                let mut buf =
                    if self.rank == root { extract_field(s, f) } else { vec![0.0f32; len] };
                debug_assert_eq!(buf.len(), len);
                if world > 1 {
                    comm.broadcast(&mut buf, root);
                }
                set_field(&mut entry, f, buf);
            }
            layers.push(entry);
        }
        KfacCheckpoint { steps: self.steps, layers }
    }

    /// Rebuild a preconditioner from a checkpoint on the *current* world —
    /// which may differ in size from the world that wrote it. Re-runs LPT
    /// placement and strategy resolution via [`Kfac::new`], then populates
    /// exactly the state each field's residency rules place on this rank:
    ///
    /// * factors land per the resolved reduction mode (dense → square on
    ///   every rank; sharded → packed on the eigendecomposition owners, with
    ///   both sections on the A worker for regather layers; local → square
    ///   on the owner),
    /// * eigen caches land on gradient workers per the algorithm flags
    ///   (`use_eigen`/`precompute_outer`/`ekfac`),
    /// * the step counter restores the update-frequency phase, and capture
    ///   is re-armed accordingly.
    ///
    /// `cfg` must use the same algorithm settings (`use_eigen`,
    /// `precompute_outer`, `ekfac`, `precision`, `triangular_comm`, update
    /// frequencies) as the run that wrote the checkpoint; the distribution
    /// settings (strategy, `grad_worker_frac`, world) are free to change —
    /// that is the elastic-resize path.
    ///
    /// # Panics
    /// If the model's K-FAC layer dimensions disagree with the checkpoint.
    pub fn restore<M: Model>(
        cfg: KfacConfig,
        model: &mut M,
        comm: &dyn Communicator,
        ckpt: &KfacCheckpoint,
    ) -> Kfac {
        let mut kfac = Kfac::new(cfg, model, comm);
        assert_eq!(
            kfac.states.len(),
            ckpt.layers.len(),
            "checkpoint layer count does not match the model"
        );
        for (s, l) in kfac.states.iter().zip(&ckpt.layers) {
            assert_eq!(
                (s.a_dim, s.g_dim),
                (l.a_dim, l.g_dim),
                "layer {:?}: factor dimensions changed since checkpoint",
                l.name
            );
        }
        kfac.steps = ckpt.steps;
        let rank = kfac.rank;
        let triangular = kfac.cfg.triangular_comm;

        for i in 0..ckpt.layers.len() {
            let entry = &ckpt.layers[i];
            let asn = kfac.plan.layers[i].clone();
            let (a_dim, g_dim) = (entry.a_dim, entry.g_dim);
            let square = |v: &Vec<f32>, d: usize| Matrix::from_vec(d, d, v.clone());

            // Running factors, per the new plan's residency.
            match kfac.strat.reduction {
                FactorReduction::DenseAllreduce => {
                    if let Some(a) = &entry.factor_a {
                        kfac.states[i].factor_a = Some(square(a, a_dim));
                    }
                    if let Some(g) = &entry.factor_g {
                        kfac.states[i].factor_g = Some(square(g, g_dim));
                    }
                }
                FactorReduction::ShardedReduceScatter => {
                    // Regather layers fold both packed sections on the A
                    // worker (the direct-inverse fallback's fold); otherwise
                    // each section lives on its own eigendecomposition
                    // worker.
                    let regather = kfac.strat.needs_regather(&asn);
                    let g_owner = if regather { asn.a_worker } else { asn.g_worker };
                    if rank == asn.a_worker {
                        if let Some(a) = &entry.factor_a {
                            kfac.states[i].packed_a = Some(pack_square(a, a_dim, triangular));
                        }
                    }
                    if rank == g_owner {
                        if let Some(g) = &entry.factor_g {
                            kfac.states[i].packed_g = Some(pack_square(g, g_dim, triangular));
                        }
                    }
                }
                FactorReduction::LocalNone => {
                    if rank == asn.a_worker {
                        if let Some(a) = &entry.factor_a {
                            kfac.states[i].factor_a = Some(square(a, a_dim));
                        }
                        if let Some(g) = &entry.factor_g {
                            kfac.states[i].factor_g = Some(square(g, g_dim));
                        }
                    }
                }
            }

            // Decomposition caches live on gradient workers only, shaped by
            // the algorithm flags (which must match the checkpointing run).
            if asn.is_gradient_worker(rank) {
                if kfac.cfg.use_eigen {
                    if let Some(qa) = &entry.qa {
                        kfac.states[i].qa = Some(square(qa, a_dim));
                    }
                    if let Some(qg) = &entry.qg {
                        kfac.states[i].qg = Some(square(qg, g_dim));
                    }
                    if kfac.cfg.precompute_outer {
                        if let Some(o) = &entry.outer {
                            kfac.states[i].outer = Some(Matrix::from_vec(g_dim, a_dim, o.clone()));
                        }
                    } else {
                        if let Some(va) = &entry.va {
                            kfac.states[i].va = Some(va.clone());
                        }
                        if let Some(vg) = &entry.vg {
                            kfac.states[i].vg = Some(vg.clone());
                        }
                    }
                } else {
                    if let Some(ia) = &entry.inv_a {
                        kfac.states[i].inv_a = Some(square(ia, a_dim));
                    }
                    if let Some(ig) = &entry.inv_g {
                        kfac.states[i].inv_g = Some(square(ig, g_dim));
                    }
                }
                if kfac.cfg.ekfac {
                    if let Some(s) = &entry.ekfac_scale {
                        kfac.states[i].ekfac_scale =
                            Some(Matrix::from_vec(g_dim, a_dim, s.clone()));
                    }
                }
            }
        }

        kfac.note_factor_residency();
        kfac.note_step_residency();
        // `Kfac::new` armed capture for a fresh step 0; re-arm for the
        // restored phase (the trainer's per-step `prepare` keeps it fresh).
        model.set_kfac_capture(kfac.is_factor_update_step());
        kfac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaisa_comm::LocalComm;
    use kaisa_nn::models::Mlp;
    use kaisa_tensor::{Precision, Rng};

    fn trained_kfac(cfg: KfacConfig, steps: usize) -> (Mlp, Kfac, LocalComm) {
        let mut rng = Rng::seed_from_u64(401);
        let mut model = Mlp::new(&[6, 9, 3], &mut rng);
        let x = Matrix::randn(12, 6, 1.0, &mut rng);
        let y: Vec<usize> = (0..12).map(|i| i % 3).collect();
        let comm = LocalComm::new();
        let mut kfac = Kfac::new(cfg, &mut model, &comm);
        for _ in 0..steps {
            kfac.prepare(&mut model);
            model.zero_grad();
            let _ = model.forward_backward(&x, &y);
            kfac.step(&mut model, &comm, 0.1);
        }
        (model, kfac, comm)
    }

    #[test]
    fn checkpoint_captures_factors_and_eigens() {
        let cfg = KfacConfig::builder().factor_update_freq(1).inv_update_freq(2).build();
        let (_, kfac, comm) = trained_kfac(cfg, 3);
        let ckpt = kfac.checkpoint_state(&comm);
        assert_eq!(ckpt.steps, 3);
        for layer in &ckpt.layers {
            assert!(layer.factor_a.is_some() && layer.factor_g.is_some());
            assert!(layer.qa.is_some() && layer.qg.is_some() && layer.outer.is_some());
            assert!(layer.va.is_none(), "precompute path stores no eigenvalues");
            assert!(layer.inv_a.is_none(), "eigen path stores no direct inverses");
            assert_eq!(layer.factor_a.as_ref().unwrap().len(), layer.a_dim * layer.a_dim);
        }
        assert!(ckpt.element_count() > 0);
    }

    #[test]
    fn restore_is_bitwise_transparent_single_rank() {
        // Pause/resume at world 1 must continue the exact trajectory: run A
        // trains 6 steps straight; run B trains 3, checkpoints, restores into
        // a fresh Kfac, and trains 3 more. Gradients must match bitwise.
        for (use_eigen, triangular, precision) in [
            (true, false, Precision::Fp32),
            (true, true, Precision::Fp16),
            (false, false, Precision::Fp32),
        ] {
            let cfg = || {
                KfacConfig::builder()
                    .factor_update_freq(2)
                    .inv_update_freq(2)
                    .use_eigen(use_eigen)
                    .triangular_comm(triangular)
                    .precision(precision)
                    .build()
            };
            let mut rng = Rng::seed_from_u64(402);
            let model0 = Mlp::new(&[6, 9, 3], &mut rng);
            let x = Matrix::randn(12, 6, 1.0, &mut rng);
            let y: Vec<usize> = (0..12).map(|i| i % 3).collect();
            let comm = LocalComm::new();

            let drive = |model: &mut Mlp, kfac: &mut Kfac, steps: usize| {
                for _ in 0..steps {
                    kfac.prepare(model);
                    model.zero_grad();
                    let _ = model.forward_backward(&x, &y);
                    kfac.step(model, &comm, 0.1);
                    // Apply a plain SGD update so the trajectory moves.
                    let g = model.grads_flat();
                    let mut p = model.params_flat();
                    for (pi, gi) in p.iter_mut().zip(&g) {
                        *pi -= 0.1 * gi;
                    }
                    model.set_params_flat(&p);
                }
            };

            let mut cont_model = model0.clone();
            let mut cont = Kfac::new(cfg(), &mut cont_model, &comm);
            drive(&mut cont_model, &mut cont, 6);

            let mut pause_model = model0.clone();
            let mut first = Kfac::new(cfg(), &mut pause_model, &comm);
            drive(&mut pause_model, &mut first, 3);
            first.flush(&comm);
            let ckpt = first.checkpoint_state(&comm);
            drop(first);
            let mut resumed = Kfac::restore(cfg(), &mut pause_model, &comm, &ckpt);
            assert_eq!(resumed.steps(), 3);
            drive(&mut pause_model, &mut resumed, 3);

            let a = cont_model.params_flat();
            let b = pause_model.params_flat();
            for (x0, x1) in a.iter().zip(&b) {
                assert_eq!(
                    x0.to_bits(),
                    x1.to_bits(),
                    "pause/resume diverged (use_eigen={use_eigen} tri={triangular} prec={precision:?})"
                );
            }
        }
    }

    #[test]
    fn checkpoint_roundtrips_through_a_second_save() {
        // save -> restore -> save must produce an identical checkpoint.
        let cfg = || KfacConfig::builder().factor_update_freq(1).inv_update_freq(2).build();
        let (mut model, kfac, comm) = trained_kfac(cfg(), 3);
        let first = kfac.checkpoint_state(&comm);
        drop(kfac);
        let restored = Kfac::restore(cfg(), &mut model, &comm, &first);
        let second = restored.checkpoint_state(&comm);
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "dimensions changed")]
    fn restore_rejects_mismatched_model() {
        let cfg = || KfacConfig::builder().factor_update_freq(1).inv_update_freq(1).build();
        let (_, kfac, comm) = trained_kfac(cfg(), 1);
        let ckpt = kfac.checkpoint_state(&comm);
        let mut other = Mlp::new(&[6, 10, 3], &mut Rng::seed_from_u64(403));
        let _ = Kfac::restore(cfg(), &mut other, &comm, &ckpt);
    }
}
