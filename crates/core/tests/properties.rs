//! Property-based tests on KAISA's core invariants: placement plans, the
//! LPT bound, preconditioner algebra, and strategy equivalence over random
//! layer configurations.

use kaisa_core::{gradient_worker_count, plan_assignments, AssignmentStrategy, KfacLayerState};
use kaisa_tensor::{Matrix, Rng};
use proptest::prelude::*;

fn random_psd(n: usize, rng: &mut Rng) -> Matrix {
    let a = Matrix::randn(n, n, 1.0, rng);
    let mut s = a.matmul_tn(&a);
    s.scale(1.0 / n as f32);
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn worker_count_within_bounds(frac in 0.001f64..4.0, world in 1usize..512) {
        let n = gradient_worker_count(frac, world);
        prop_assert!(n >= 1 && n <= world);
    }

    #[test]
    fn plans_are_valid_partitions(
        layers in prop::collection::vec((2usize..64, 2usize..64), 1..20),
        world in 1usize..17,
        frac in 0.01f64..1.0,
    ) {
        let plan = plan_assignments(&layers, world, frac, AssignmentStrategy::ComputeLpt);
        for layer in &plan.layers {
            // Workers sorted, unique, within range.
            for w in layer.gradient_workers.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            prop_assert!(layer.gradient_workers.iter().all(|&r| r < world));
            // Eigen workers are gradient workers.
            prop_assert!(layer.is_gradient_worker(layer.a_worker));
            prop_assert!(layer.is_gradient_worker(layer.g_worker));
            // Broadcast groups partition exactly the receivers.
            let mut seen = std::collections::HashSet::new();
            for group in &layer.bcast_groups {
                prop_assert!(group.len() >= 2, "groups with no receivers are dropped");
                prop_assert!(layer.is_gradient_worker(group[0]), "root must be a worker");
                for &r in group {
                    prop_assert!(seen.insert(r), "rank {} in two groups", r);
                }
            }
            let receivers: usize = layer.bcast_groups.iter().map(|g| g.len() - 1).sum();
            prop_assert_eq!(receivers, world - layer.gradient_workers.len());
            // Every rank is either a worker or in exactly one group.
            for r in 0..world {
                let worker = layer.is_gradient_worker(r);
                let grouped = layer.bcast_group_of(r).is_some();
                prop_assert!(worker || grouped, "rank {} orphaned", r);
            }
        }
    }

    #[test]
    fn lpt_respects_graham_bound(
        layers in prop::collection::vec((2usize..200, 2usize..200), 1..40),
        world in 1usize..33,
    ) {
        // LPT makespan <= 3/2 * OPT with OPT >= max(total/m, largest job).
        let plan = plan_assignments(&layers, world, 1.0, AssignmentStrategy::ComputeLpt);
        let total = plan.total_load();
        let largest = layers
            .iter()
            .flat_map(|&(a, g)| [a, g])
            .map(|n| (n as f64).powi(3))
            .fold(0.0, f64::max);
        let lower = (total / world as f64).max(largest);
        prop_assert!(plan.makespan() <= 1.5 * lower + 1e-6,
            "makespan {} vs bound {}", plan.makespan(), 1.5 * lower);
    }

    #[test]
    fn lpt_never_worse_than_round_robin(
        layers in prop::collection::vec((2usize..100, 2usize..100), 1..24),
        world in 1usize..17,
    ) {
        let lpt = plan_assignments(&layers, world, 1.0, AssignmentStrategy::ComputeLpt);
        let rr = plan_assignments(&layers, world, 1.0, AssignmentStrategy::RoundRobin);
        prop_assert!(lpt.makespan() <= rr.makespan() + 1e-6);
    }

    #[test]
    fn preconditioner_is_exact_damped_kronecker_inverse(
        a_dim in 2usize..8,
        g_dim in 2usize..8,
        damping in 0.001f32..0.5,
        seed in any::<u64>(),
    ) {
        // For arbitrary PSD factors and damping, Eq. 15-17 must equal
        // (kron(G, A) + γI)^{-1} vec(grad).
        let mut rng = Rng::seed_from_u64(seed);
        let fa = random_psd(a_dim, &mut rng);
        let fg = random_psd(g_dim, &mut rng);
        let mut state = KfacLayerState::new("prop", a_dim, g_dim);
        state.update_factors(fa.clone(), fg.clone(), 0.0);
        let (qa, va) = state.eig_a();
        let (qg, vg) = state.eig_g();
        state.outer = Some(KfacLayerState::compute_outer(&vg, &va, damping));
        state.qa = Some(qa);
        state.qg = Some(qg);
        let grad = Matrix::randn(g_dim, a_dim, 1.0, &mut rng);
        let fast = state.precondition_eigen(&grad, damping);

        // Explicit Kronecker matrix (row-major convention: kron(G, A)).
        let k = Matrix::from_fn(g_dim * a_dim, g_dim * a_dim, |r, c| {
            fg.get(r / a_dim, c / a_dim) * fa.get(r % a_dim, c % a_dim)
        });
        let mut damped = k;
        damped.add_diag(damping);
        let inv = kaisa_linalg::lu_inverse(&damped).unwrap();
        let flat = Matrix::from_vec(g_dim * a_dim, 1, grad.as_slice().to_vec());
        let expect = Matrix::from_vec(g_dim, a_dim, inv.matmul(&flat).into_vec());

        let scale = expect.max_abs().max(1e-3);
        prop_assert!(fast.max_abs_diff(&expect) < 5e-3 * scale.max(1.0),
            "deviation {}", fast.max_abs_diff(&expect));
    }

    #[test]
    fn preconditioning_never_amplifies_beyond_inverse_damping(
        a_dim in 2usize..8,
        g_dim in 2usize..8,
        damping in 0.01f32..1.0,
        seed in any::<u64>(),
    ) {
        // ‖(F + γI)^{-1} g‖ ≤ ‖g‖ / γ: the damped preconditioner's gain is
        // bounded, so K-FAC cannot blow up a gradient unboundedly.
        let mut rng = Rng::seed_from_u64(seed);
        let mut state = KfacLayerState::new("gain", a_dim, g_dim);
        state.update_factors(random_psd(a_dim, &mut rng), random_psd(g_dim, &mut rng), 0.0);
        let (qa, va) = state.eig_a();
        let (qg, vg) = state.eig_g();
        state.outer = Some(KfacLayerState::compute_outer(&vg, &va, damping));
        state.qa = Some(qa);
        state.qg = Some(qg);
        let grad = Matrix::randn(g_dim, a_dim, 1.0, &mut rng);
        let p = state.precondition_eigen(&grad, damping);
        prop_assert!(p.frob_norm() <= grad.frob_norm() / damping * 1.01,
            "gain {} exceeds 1/γ = {}", p.frob_norm() / grad.frob_norm(), 1.0 / damping);
    }

    #[test]
    fn plan_deterministic_across_calls(
        layers in prop::collection::vec((2usize..64, 2usize..64), 1..12),
        world in 1usize..9,
        frac in 0.1f64..1.0,
    ) {
        let a = plan_assignments(&layers, world, frac, AssignmentStrategy::ComputeLpt);
        let b = plan_assignments(&layers, world, frac, AssignmentStrategy::ComputeLpt);
        prop_assert_eq!(a.layers, b.layers);
    }
}
