//! Group interning: a world-shared table mapping each distinct (sorted,
//! deduplicated) rank set to a small dense [`GroupId`], plus a per-handle
//! cache so the per-collective matching path never allocates.
//!
//! Before this table, every collective hashed an owned `Vec<usize>` into the
//! sequence map (`group.to_vec()` per call) and re-sorted the raw group
//! slice. Now the raw slice — in whatever order the caller passed it — hits
//! a handle-local `HashMap<Vec<usize>, _>` via its `Borrow<[usize]>` lookup
//! (zero allocation after first use), and the per-group sequence counters
//! are a flat `Vec<u64>` indexed by the interned id.
//!
//! The table is *world-shared* on purpose: ids double as wire keys for the
//! SPSC ring backend, so every rank must agree on them. Whichever rank
//! interns a group first assigns its id; later ranks look it up. The shared
//! mutex is touched only on the first sighting of a group per handle.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Dense identifier of an interned rank group, consistent across all ranks
/// of one world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct GroupId(pub(crate) u32);

/// World-shared intern table: normalized member list → [`GroupId`].
#[derive(Debug, Default)]
pub(crate) struct GroupTable {
    inner: Mutex<GroupTableInner>,
}

#[derive(Debug, Default)]
struct GroupTableInner {
    ids: HashMap<Arc<[usize]>, GroupId>,
    members: Vec<Arc<[usize]>>,
}

impl GroupTable {
    /// Intern a *normalized* (sorted, deduplicated) member list, returning
    /// its id and the shared member storage.
    fn intern(&self, normalized: &[usize]) -> (GroupId, Arc<[usize]>) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(&id) = inner.ids.get(normalized) {
            let members = Arc::clone(&inner.members[id.0 as usize]);
            return (id, members);
        }
        let id = GroupId(inner.members.len() as u32);
        let members: Arc<[usize]> = normalized.into();
        inner.members.push(Arc::clone(&members));
        inner.ids.insert(Arc::clone(&members), id);
        (id, members)
    }
}

/// Handle-local group state: the raw-slice → interned-group cache and the
/// per-group collective sequence counters (the matching-order clock).
#[derive(Debug)]
pub(crate) struct HandleGroups {
    rank: usize,
    world: usize,
    /// Keyed by the group slice exactly as the caller passed it, so repeat
    /// calls look up by `&[usize]` without allocating or sorting. Distinct
    /// orderings of the same group get distinct cache rows but the same id.
    cache: HashMap<Vec<usize>, (GroupId, Arc<[usize]>)>,
    /// Next sequence number per group, indexed by `GroupId`.
    seq: Vec<u64>,
}

impl HandleGroups {
    pub(crate) fn new(rank: usize, world: usize) -> Self {
        HandleGroups { rank, world, cache: HashMap::new(), seq: Vec::new() }
    }

    /// Normalize, validate, and intern `raw`, memoizing the result. Panics
    /// (once, at first sight — validity is a property of the group, not the
    /// call) if a member is out of range or this rank is not a member.
    pub(crate) fn resolve(&mut self, table: &GroupTable, raw: &[usize]) -> (GroupId, Arc<[usize]>) {
        if let Some((id, members)) = self.cache.get(raw) {
            return (*id, Arc::clone(members));
        }
        let mut g = raw.to_vec();
        g.sort_unstable();
        g.dedup();
        assert!(
            g.iter().all(|&r| r < self.world),
            "group rank out of range (world={})",
            self.world
        );
        assert!(g.contains(&self.rank), "rank {} is not in group {:?}", self.rank, g);
        let (id, members) = table.intern(&g);
        self.cache.insert(raw.to_vec(), (id, Arc::clone(&members)));
        (id, members)
    }

    /// Take the next matching-order sequence number for `gid`.
    pub(crate) fn next_seq(&mut self, gid: GroupId) -> u64 {
        let idx = gid.0 as usize;
        if idx >= self.seq.len() {
            self.seq.resize(idx + 1, 0);
        }
        let s = self.seq[idx];
        self.seq[idx] += 1;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_order_insensitive_and_stable() {
        let table = GroupTable::default();
        let mut h0 = HandleGroups::new(0, 4);
        let mut h2 = HandleGroups::new(2, 4);
        let (a, m1) = h0.resolve(&table, &[2, 0, 2]);
        let (b, m2) = h2.resolve(&table, &[0, 2]);
        assert_eq!(a, b);
        assert_eq!(&*m1, &[0, 2]);
        assert_eq!(&*m2, &[0, 2]);
        let (c, _) = h0.resolve(&table, &[0, 1, 2, 3]);
        assert_ne!(a, c);
        // Cached second lookups return the same ids.
        assert_eq!(h0.resolve(&table, &[2, 0, 2]).0, a);
        assert_eq!(h0.resolve(&table, &[0, 1, 2, 3]).0, c);
    }

    #[test]
    fn sequence_counters_are_per_group() {
        let table = GroupTable::default();
        let mut h = HandleGroups::new(0, 4);
        let (a, _) = h.resolve(&table, &[0, 1]);
        let (b, _) = h.resolve(&table, &[0, 1, 2]);
        assert_eq!(h.next_seq(a), 0);
        assert_eq!(h.next_seq(a), 1);
        assert_eq!(h.next_seq(b), 0);
        assert_eq!(h.next_seq(a), 2);
        assert_eq!(h.next_seq(b), 1);
    }

    #[test]
    #[should_panic(expected = "is not in group")]
    fn non_member_resolution_panics() {
        let table = GroupTable::default();
        let mut h = HandleGroups::new(3, 4);
        let _ = h.resolve(&table, &[0, 1]);
    }
}
