//! α–β analytic cost models for collectives.
//!
//! The paper's performance arguments (Section 3.1) rest on the standard
//! latency–bandwidth model of collective algorithms: a point-to-point message
//! of `n` bytes costs `α + nβ`; a binomial-tree broadcast over `p` ranks
//! costs `⌈log₂ p⌉ (α + nβ)`; a ring allreduce costs
//! `2(p-1)α + 2n β (p-1)/p`. KAISA's HYBRID-OPT replaces one broadcast to
//! `p` ranks with `g` *concurrent* broadcasts to `p/g` ranks each, dropping
//! the preconditioned-gradient broadcast complexity from `O(log p)` to
//! `O(log (p/g))`.

/// Which algorithm a collective uses, for cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveAlgorithm {
    /// Binomial (minimum-spanning) tree: `⌈log₂ p⌉` rounds.
    BinomialTree,
    /// Bandwidth-optimal ring: `p-1` rounds of `n/p` chunks.
    Ring,
}

/// Latency–bandwidth model of one network link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterNetwork {
    /// Per-message latency, seconds (the α term).
    pub latency_s: f64,
    /// Per-byte transfer time, seconds (the β term, i.e. 1/bandwidth).
    pub seconds_per_byte: f64,
}

impl ClusterNetwork {
    /// InfiniBand EDR-class network (Frontera's V100 subsystem): ~100 Gb/s
    /// effective per direction, ~20 µs collective launch latency.
    pub fn infiniband_edr() -> Self {
        ClusterNetwork { latency_s: 20e-6, seconds_per_byte: 1.0 / 12.5e9 }
    }

    /// NVLink/NVSwitch-class intra-node fabric on DGX-A100 (Theta): ~200 Gb/s
    /// effective, lower launch latency.
    pub fn dgx_a100() -> Self {
        ClusterNetwork { latency_s: 10e-6, seconds_per_byte: 1.0 / 25e9 }
    }

    /// Commodity 10 GbE for the "high communication cost" environments the
    /// paper's conclusion targets.
    pub fn ethernet_10g() -> Self {
        ClusterNetwork { latency_s: 50e-6, seconds_per_byte: 1.0 / 1.25e9 }
    }

    /// Point-to-point cost of one `n`-byte message.
    pub fn p2p(&self, bytes: usize) -> f64 {
        self.latency_s + bytes as f64 * self.seconds_per_byte
    }
}

/// Cost model dispatching per collective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectiveCostModel {
    /// The underlying link model.
    pub network: ClusterNetwork,
}

impl CollectiveCostModel {
    /// Build a cost model over the given network.
    pub fn new(network: ClusterNetwork) -> Self {
        CollectiveCostModel { network }
    }

    /// Binomial (minimum-spanning-tree) broadcast of `bytes` to a group of
    /// `p` ranks: `⌈log₂ p⌉ (α + nβ)` — the complexity the paper's Section
    /// 3.1 analysis uses for the per-layer preconditioned-gradient messages
    /// (which are small enough that chunk pipelining does not amortize the
    /// tree depth). A group of one costs nothing.
    pub fn broadcast(&self, bytes: usize, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let rounds = (usize::BITS - (p - 1).leading_zeros()) as f64; // ceil(log2 p)
        rounds * self.network.p2p(bytes)
    }

    /// Ring allreduce of `bytes` across `p` ranks:
    /// `2(p-1)α + 2 n β (p-1)/p`.
    pub fn allreduce(&self, bytes: usize, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let pf = p as f64;
        2.0 * (pf - 1.0) * self.network.latency_s
            + 2.0 * bytes as f64 * self.network.seconds_per_byte * (pf - 1.0) / pf
    }

    /// Ring allgather where each rank contributes `bytes`:
    /// `(p-1)(α + nβ)`.
    pub fn allgather(&self, bytes_per_rank: usize, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p as f64 - 1.0) * self.network.p2p(bytes_per_rank)
    }

    /// Ring reduce-scatter of a `bytes` payload across `p` ranks:
    /// `(p-1)α + n β (p-1)/p` — exactly half a ring allreduce, which is
    /// reduce-scatter followed by allgather.
    pub fn reduce_scatter(&self, bytes: usize, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let pf = p as f64;
        (pf - 1.0) * self.network.latency_s
            + bytes as f64 * self.network.seconds_per_byte * (pf - 1.0) / pf
    }

    /// Dissemination barrier: `⌈log₂ p⌉` zero-byte rounds.
    pub fn barrier(&self, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let rounds = (usize::BITS - (p - 1).leading_zeros()) as f64;
        rounds * self.network.latency_s
    }
}

impl Default for CollectiveCostModel {
    fn default() -> Self {
        CollectiveCostModel::new(ClusterNetwork::infiniband_edr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CollectiveCostModel {
        CollectiveCostModel::new(ClusterNetwork { latency_s: 1e-5, seconds_per_byte: 1e-9 })
    }

    #[test]
    fn broadcast_log_scaling() {
        let m = model();
        let n = 1 << 20;
        // log2(8) = 3 rounds vs log2(2) = 1 round: exactly 3x.
        let c8 = m.broadcast(n, 8);
        let c2 = m.broadcast(n, 2);
        assert!((c8 / c2 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn broadcast_non_power_of_two_uses_ceil() {
        let m = model();
        // ceil(log2(5)) = 3 == ceil(log2(8)).
        assert_eq!(m.broadcast(100, 5), m.broadcast(100, 8));
    }

    #[test]
    fn singleton_groups_are_free() {
        let m = model();
        assert_eq!(m.broadcast(1000, 1), 0.0);
        assert_eq!(m.allreduce(1000, 1), 0.0);
        assert_eq!(m.allgather(1000, 1), 0.0);
        assert_eq!(m.reduce_scatter(1000, 1), 0.0);
        assert_eq!(m.barrier(1), 0.0);
    }

    #[test]
    fn reduce_scatter_is_half_an_allreduce() {
        let m = model();
        let n = 1 << 20;
        for p in [2usize, 4, 8, 17] {
            let rs = m.reduce_scatter(n, p);
            let ar = m.allreduce(n, p);
            assert!((rs * 2.0 - ar).abs() < 1e-12, "p={p}: {rs} vs {ar}");
        }
    }

    #[test]
    fn ring_allreduce_bandwidth_term_saturates() {
        // As p grows, the bandwidth term approaches 2nβ (ring optimality).
        let m = model();
        let n = 100 << 20;
        let c_large = m.allreduce(n, 1024);
        let bw_bound = 2.0 * n as f64 * m.network.seconds_per_byte;
        // Latency term: 2 * 1023 * 1e-5 ≈ 0.02 s; bandwidth ≈ 0.21 s.
        assert!(c_large > bw_bound);
        assert!(c_large < bw_bound * 1.15);
    }

    #[test]
    fn hybrid_opt_broadcast_claim() {
        // The paper's Figure 4 example: MEM-OPT broadcasts to 8 ranks
        // (O(log 8)); HYBRID-OPT with 4 gradient workers does 4 concurrent
        // broadcasts to groups of 2 (O(log 2)) — 3x cheaper per the model.
        let m = model();
        let n = 4 << 20;
        let mem_opt = m.broadcast(n, 8);
        let hybrid = m.broadcast(n, 2); // concurrent, so one group's cost
        assert!((mem_opt / hybrid - 3.0).abs() < 1e-9);
    }

    #[test]
    fn presets_are_ordered_by_speed() {
        let ib = ClusterNetwork::infiniband_edr();
        let dgx = ClusterNetwork::dgx_a100();
        let eth = ClusterNetwork::ethernet_10g();
        let n = 1 << 24;
        assert!(dgx.p2p(n) < ib.p2p(n));
        assert!(ib.p2p(n) < eth.p2p(n));
    }
}
