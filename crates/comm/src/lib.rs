//! # kaisa-comm
//!
//! Multi-rank collective communication for the KAISA reproduction.
//!
//! The paper runs on NCCL over InfiniBand with one process per GPU. Here,
//! *ranks are OS threads* inside one process that exchange data through
//! shared-memory rendezvous slots — real concurrency with real collective
//! semantics (matching order per group, barriers, sub-group broadcasts), the
//! properties HYBRID-OPT's correctness depends on.
//!
//! Every collective is metered: byte volume, operation counts, and a
//! *simulated wall time* from an α–β (latency–bandwidth) cost model with
//! tree/ring collective algorithms. The simulated clock is what the
//! figure-regeneration harness reads to reproduce the paper's timing results
//! at scales (64–448 GPUs) this machine cannot physically host.
//!
//! ## Example
//! ```
//! use kaisa_comm::{Communicator, ReduceOp, ThreadComm};
//!
//! let outputs = ThreadComm::run(4, |comm| {
//!     let mut buf = vec![comm.rank() as f32; 8];
//!     comm.allreduce(&mut buf, ReduceOp::Sum);
//!     buf[0]
//! });
//! assert_eq!(outputs, vec![6.0; 4]); // 0+1+2+3 on every rank
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost_model;
mod local;
mod meter;
mod thread_comm;

pub use cost_model::{ClusterNetwork, CollectiveAlgorithm, CollectiveCostModel};
pub use local::LocalComm;
pub use meter::{CommEvent, CommOp, Meter, MeterSnapshot};
pub use thread_comm::ThreadComm;

/// Reduction operator for [`Communicator::allreduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise sum divided by the group size.
    Avg,
    /// Elementwise maximum.
    Max,
}

/// Collective communication interface shared by the single-process and
/// thread-rank backends.
///
/// Matching semantics follow MPI: every member of a group must issue the
/// group's collectives in the same order. A "group" is any sorted set of
/// ranks; the world group is implied by the plain methods.
pub trait Communicator: Send + Sync {
    /// This process's rank in `[0, world_size)`.
    fn rank(&self) -> usize;

    /// Total number of ranks.
    fn world_size(&self) -> usize;

    /// Elementwise reduction across all ranks; every rank receives the result.
    fn allreduce(&self, buf: &mut [f32], op: ReduceOp);

    /// Reduction across a sub-group. Only ranks in `group` may call.
    fn allreduce_group(&self, buf: &mut [f32], op: ReduceOp, group: &[usize]);

    /// Broadcast `buf` from `root` to all ranks.
    fn broadcast(&self, buf: &mut [f32], root: usize);

    /// Broadcast within a sub-group. Only ranks in `group` may call, and
    /// `root` must be a member.
    fn broadcast_group(&self, buf: &mut [f32], root: usize, group: &[usize]);

    /// Gather each rank's `send` buffer; returns the concatenation in rank
    /// order on every rank.
    fn allgather(&self, send: &[f32]) -> Vec<f32>;

    /// Reduce-scatter: elementwise-sum every rank's `send` buffer (length
    /// must be `world_size * chunk`), then return this rank's chunk of the
    /// result. The building block of ring allreduce; exposed for gradient
    /// sharding experiments.
    fn reduce_scatter(&self, send: &[f32]) -> Vec<f32>;

    /// Block until every rank has reached the barrier.
    fn barrier(&self);

    /// Snapshot of this communicator's traffic meter.
    fn meter_snapshot(&self) -> MeterSnapshot;

    /// Simulated communication seconds accumulated by the cost model.
    fn simulated_seconds(&self) -> f64 {
        self.meter_snapshot().simulated_seconds
    }
}
