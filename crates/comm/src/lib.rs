//! # kaisa-comm
//!
//! Multi-rank collective communication for the KAISA reproduction.
//!
//! The paper runs on NCCL over InfiniBand with one process per GPU. Here,
//! *ranks are OS threads* inside one process that exchange data through
//! shared-memory rendezvous slots — real concurrency with real collective
//! semantics (matching order per group, barriers, sub-group broadcasts), the
//! properties HYBRID-OPT's correctness depends on.
//!
//! Every collective is metered: byte volume, operation counts, and a
//! *simulated wall time* from an α–β (latency–bandwidth) cost model with
//! tree/ring collective algorithms. The simulated clock is what the
//! figure-regeneration harness reads to reproduce the paper's timing results
//! at scales (64–448 GPUs) this machine cannot physically host.
//!
//! ## Example
//! ```
//! use kaisa_comm::{Communicator, ReduceOp, ThreadComm};
//!
//! let outputs = ThreadComm::run(4, |comm| {
//!     let mut buf = vec![comm.rank() as f32; 8];
//!     comm.allreduce(&mut buf, ReduceOp::Sum);
//!     buf[0]
//! });
//! assert_eq!(outputs, vec![6.0; 4]); // 0+1+2+3 on every rank
//! ```

// `deny` rather than `forbid`: the SPSC ring internals (`spsc`) and the
// `sched_setaffinity` FFI shim (`affinity`) carry targeted
// `#[allow(unsafe_code)]` with safety comments; everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod affinity;
mod cost_model;
mod group;
mod local;
mod meter;
mod pool;
mod ring_comm;
pub mod spsc;
mod thread_comm;

pub use cost_model::{ClusterNetwork, CollectiveAlgorithm, CollectiveCostModel};
pub use local::LocalComm;
pub use meter::{CommEvent, CommOp, CommTag, Meter, MeterSnapshot};
pub use pool::RankPool;
pub use thread_comm::ThreadComm;

use group::GroupId;

/// Which engine a [`ThreadComm`] world runs its collectives on.
///
/// Both engines implement identical semantics (deterministic rank-ordered
/// reduction, MPI matching order, non-blocking `begin_*`/`complete`) and
/// meter identical traffic; they differ only in how payloads move between
/// rank threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThreadCommBackend {
    /// The seed engine: one mutex-guarded rendezvous slot table plus a
    /// condvar. Kept as an A/B baseline and debug escape hatch — every
    /// collective serializes on the slot lock.
    Mutex,
    /// Lock-free engine: one cache-line-padded SPSC ring per ordered rank
    /// pair with a spin-then-park progress loop. The hot path takes no
    /// lock. This is the default.
    #[default]
    Ring,
}

impl ThreadCommBackend {
    /// Resolve the backend from `KAISA_COMM_BACKEND` (`ring` or `mutex`,
    /// case-insensitive); unset or unrecognized values give the default
    /// ([`ThreadCommBackend::Ring`]).
    pub fn from_env() -> Self {
        match std::env::var("KAISA_COMM_BACKEND") {
            Ok(v) => v.parse().unwrap_or_default(),
            Err(_) => Self::default(),
        }
    }
}

impl std::str::FromStr for ThreadCommBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "mutex" => Ok(ThreadCommBackend::Mutex),
            "ring" => Ok(ThreadCommBackend::Ring),
            other => Err(format!("unknown comm backend {other:?} (expected ring|mutex)")),
        }
    }
}

impl std::fmt::Display for ThreadCommBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ThreadCommBackend::Mutex => "mutex",
            ThreadCommBackend::Ring => "ring",
        })
    }
}

/// Construction options for a [`ThreadComm`] world
/// ([`ThreadComm::world_with`] / [`ThreadComm::run_with`]).
#[derive(Debug, Clone)]
pub struct CommOptions {
    /// The α–β collective cost model feeding the simulated clock.
    pub cost: CollectiveCostModel,
    /// Which collective engine to run on.
    pub backend: ThreadCommBackend,
    /// Pin rank `r` to core `r % available_parallelism` at spawn
    /// ([`ThreadComm::run_with`] only). Defaults to the `KAISA_PIN_CORES`
    /// environment variable (`1`/`true`); off otherwise — pinning hurts on
    /// oversubscribed machines.
    pub pin_cores: bool,
    /// Capacity (messages) of each rank-pair SPSC ring; rounded up to a
    /// power of two. Only the ring backend reads it.
    pub ring_capacity: usize,
}

impl Default for CommOptions {
    fn default() -> Self {
        CommOptions {
            cost: CollectiveCostModel::default(),
            backend: ThreadCommBackend::from_env(),
            pin_cores: std::env::var("KAISA_PIN_CORES")
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false),
            ring_capacity: 256,
        }
    }
}

/// Rendezvous ticket for a collective still in flight on [`ThreadComm`]:
/// the (interned-group, sequence) key plus the participant count needed to
/// retire the slot.
#[derive(Debug)]
pub(crate) struct PendingTicket {
    pub(crate) key: (GroupId, u64),
    pub(crate) participants: usize,
    /// For reduce-scatter: the `(start, len)` ranges of the reduced payload
    /// this rank owns. [`Communicator::complete`] copies their concatenation
    /// instead of the whole slot buffer.
    pub(crate) shard: Option<Vec<(usize, usize)>>,
}

/// One contiguous shard of a reduce-scatter payload: after the collective,
/// group member `owner` holds `payload[start .. start + len]` of the reduced
/// result. A shard list must tile the payload exactly (sorted, disjoint,
/// covering) and every owner must be a member of the participating group;
/// one rank may own several shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Group member that owns this shard after the reduction.
    pub owner: usize,
    /// First payload element of the shard.
    pub start: usize,
    /// Shard length in elements.
    pub len: usize,
}

/// Handle for a collective started with [`Communicator::begin_allreduce`] or
/// [`Communicator::begin_broadcast`] and finished with
/// [`Communicator::complete`].
///
/// Splitting initiation from completion lets the K-FAC stage pipeline start
/// a layer's allreduce/broadcast, run local eig/GEMM work for other layers,
/// and only block when the result is actually needed. The handle also
/// carries the [`CommTag`] of the issuing stage for meter attribution.
///
/// Dropping a pending handle without calling `complete` leaves the
/// rendezvous slot behind and will wedge the other participants — every
/// handle must be completed.
#[must_use = "a pending collective must be passed to Communicator::complete"]
#[derive(Debug)]
pub struct PendingCollective {
    /// Result already available at begin time (world-of-one, default
    /// blocking impls, or backends that finished eagerly).
    payload: Option<Vec<f32>>,
    /// Backend rendezvous ticket when the result is not yet available.
    ticket: Option<PendingTicket>,
    tag: CommTag,
}

impl PendingCollective {
    /// A collective that finished at begin time with this result.
    pub fn ready(payload: Vec<f32>, tag: CommTag) -> Self {
        PendingCollective { payload: Some(payload), ticket: None, tag }
    }

    /// A collective whose completion is a no-op (e.g. the broadcast root:
    /// its buffer already holds the payload).
    pub fn noop(tag: CommTag) -> Self {
        PendingCollective { payload: None, ticket: None, tag }
    }

    pub(crate) fn in_flight(key: (GroupId, u64), participants: usize, tag: CommTag) -> Self {
        PendingCollective {
            payload: None,
            ticket: Some(PendingTicket { key, participants, shard: None }),
            tag,
        }
    }

    /// In-flight reduce-scatter: completion copies only this rank's owned
    /// `(start, len)` ranges of the reduced payload, concatenated.
    pub(crate) fn in_flight_sharded(
        key: (GroupId, u64),
        participants: usize,
        tag: CommTag,
        ranges: Vec<(usize, usize)>,
    ) -> Self {
        PendingCollective {
            payload: None,
            ticket: Some(PendingTicket { key, participants, shard: Some(ranges) }),
            tag,
        }
    }

    pub(crate) fn take_payload(&mut self) -> Option<Vec<f32>> {
        self.payload.take()
    }

    pub(crate) fn take_ticket(&mut self) -> Option<PendingTicket> {
        self.ticket.take()
    }

    pub(crate) fn ticket(&self) -> Option<&PendingTicket> {
        self.ticket.as_ref()
    }

    /// Whether the result is already available at the handle (begin-time
    /// payload or no-op completion). Backends without a ticket concept are
    /// always ready; ticketed backends are queried via
    /// [`Communicator::poll_ready`].
    pub fn is_eager(&self) -> bool {
        self.ticket.is_none()
    }

    /// The pipeline stage this collective was issued by.
    pub fn tag(&self) -> CommTag {
        self.tag
    }
}

/// Reduction operator for [`Communicator::allreduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise sum divided by the group size.
    Avg,
    /// Elementwise maximum.
    Max,
}

/// Collective communication interface shared by the single-process and
/// thread-rank backends.
///
/// Matching semantics follow MPI: every member of a group must issue the
/// group's collectives in the same order. A "group" is any sorted set of
/// ranks; the world group is implied by the plain methods.
pub trait Communicator: Send + Sync {
    /// This process's rank in `[0, world_size)`.
    fn rank(&self) -> usize;

    /// Total number of ranks.
    fn world_size(&self) -> usize;

    /// Elementwise reduction across all ranks; every rank receives the result.
    fn allreduce(&self, buf: &mut [f32], op: ReduceOp);

    /// Reduction across a sub-group. Only ranks in `group` may call.
    fn allreduce_group(&self, buf: &mut [f32], op: ReduceOp, group: &[usize]);

    /// Broadcast `buf` from `root` to all ranks.
    fn broadcast(&self, buf: &mut [f32], root: usize);

    /// Broadcast within a sub-group. Only ranks in `group` may call, and
    /// `root` must be a member.
    fn broadcast_group(&self, buf: &mut [f32], root: usize, group: &[usize]);

    /// Gather each rank's `send` buffer; returns the concatenation in rank
    /// order on every rank.
    fn allgather(&self, send: &[f32]) -> Vec<f32>;

    /// Reduce-scatter: elementwise-sum every rank's `send` buffer, then
    /// return this rank's contiguous chunk of the result. Payload lengths
    /// need not divide the world size: with `chunk = ⌈len / world⌉`, rank
    /// `k` owns `result[k·chunk .. min((k+1)·chunk, len)]` (pad-and-trim —
    /// trailing ranks may receive short or empty chunks). The building block
    /// of ring allreduce; exposed for gradient sharding experiments.
    fn reduce_scatter(&self, send: &[f32]) -> Vec<f32>;

    /// Block until every rank has reached the barrier.
    fn barrier(&self);

    /// Start a (sub-)group allreduce without waiting for its result. The
    /// contribution is captured from `buf` at call time; retrieve the result
    /// with [`Communicator::complete`].
    ///
    /// The default implementation blocks (begin-then-complete degenerates to
    /// the plain collective) — correct for single-rank backends like
    /// [`LocalComm`]; true multi-rank backends must override it to be
    /// non-blocking or a begin-many-then-complete pattern would deadlock.
    fn begin_allreduce(
        &self,
        buf: &[f32],
        op: ReduceOp,
        group: &[usize],
        tag: CommTag,
    ) -> PendingCollective {
        let mut tmp = buf.to_vec();
        self.allreduce_group(&mut tmp, op, group);
        PendingCollective::ready(tmp, tag)
    }

    /// Start a (sub-)group broadcast without waiting. On the root, `buf`
    /// supplies the payload and completion is a no-op; on other members the
    /// payload arrives at [`Communicator::complete`].
    ///
    /// Same blocking-default caveat as [`Communicator::begin_allreduce`].
    fn begin_broadcast(
        &self,
        buf: &[f32],
        root: usize,
        group: &[usize],
        tag: CommTag,
    ) -> PendingCollective {
        let mut tmp = buf.to_vec();
        self.broadcast_group(&mut tmp, root, group);
        PendingCollective::ready(tmp, tag)
    }

    /// Start a (sub-)group reduce-scatter without waiting. Every member of
    /// `group` contributes a full `buf` of identical length; after the
    /// reduction each member retrieves, via [`Communicator::complete`], the
    /// concatenation of the `shards` it owns (possibly empty — such ranks
    /// still must call `complete` with an empty buffer to retire the
    /// collective). `shards` must tile `buf` exactly and be identical on
    /// every member; results are reduced in rank order, so a shard's bits
    /// equal the same slice of an [`Communicator::allreduce_group`] over the
    /// same group.
    ///
    /// Same blocking-default caveat as [`Communicator::begin_allreduce`].
    fn begin_reduce_scatter(
        &self,
        buf: &[f32],
        op: ReduceOp,
        group: &[usize],
        shards: &[ShardSpec],
        tag: CommTag,
    ) -> PendingCollective {
        let mut tmp = buf.to_vec();
        self.allreduce_group(&mut tmp, op, group);
        let mut owned = Vec::new();
        for s in shards {
            if s.owner == self.rank() {
                owned.extend_from_slice(&tmp[s.start..s.start + s.len]);
            }
        }
        PendingCollective::ready(owned, tag)
    }

    /// Start a (sub-)group allgather without waiting. Contributions may
    /// differ in length per member; [`Communicator::complete`] writes their
    /// concatenation in group rank order, so every member's completion
    /// buffer must be sized to the (caller-agreed) total.
    ///
    /// The default implementation only supports singleton groups (the
    /// identity gather); multi-rank backends must override it.
    fn begin_allgather(&self, buf: &[f32], group: &[usize], tag: CommTag) -> PendingCollective {
        assert!(
            group.len() <= 1,
            "default begin_allgather supports only singleton groups; backend must override"
        );
        PendingCollective::ready(buf.to_vec(), tag)
    }

    /// Non-blocking readiness probe: `true` iff a subsequent
    /// [`Communicator::complete`] of `pending` would return without waiting
    /// on other ranks. Eager handles (begin-time payload or no-op) are always
    /// ready. The cooperative task runtime uses this to *park* a task whose
    /// collective is still in flight and yield the rank to other runnable
    /// tasks instead of blocking inside `complete`.
    ///
    /// The default says ready, which is correct for backends whose `begin_*`
    /// methods block (the result exists by the time a handle is returned).
    fn poll_ready(&self, pending: &PendingCollective) -> bool {
        let _ = pending;
        true
    }

    /// Block until `pending` finishes and write its result into `buf`
    /// (no-op completions leave `buf` untouched).
    fn complete(&self, pending: PendingCollective, buf: &mut [f32]) {
        let mut pending = pending;
        if let Some(payload) = pending.take_payload() {
            buf.copy_from_slice(&payload);
        }
    }

    /// Snapshot of this communicator's traffic meter.
    fn meter_snapshot(&self) -> MeterSnapshot;

    /// Simulated communication seconds accumulated by the cost model.
    fn simulated_seconds(&self) -> f64 {
        self.meter_snapshot().simulated_seconds
    }
}
