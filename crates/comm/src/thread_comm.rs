//! Thread-rank communicator with two interchangeable engines: lock-free
//! SPSC rings (default) and the seed mutex+condvar rendezvous mailboxes.
//!
//! Both engines implement the same collective semantics — deterministic
//! rank-ordered reductions, MPI matching order per group, the non-blocking
//! `begin_*`/`poll_ready`/`complete` split — and meter identical traffic,
//! so they are bitwise interchangeable. See [`crate::ThreadCommBackend`]
//! for how to pick one and `crates/comm/src/ring_comm.rs` for the ring
//! protocol.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar, Mutex};

use crate::group::{GroupId, GroupTable, HandleGroups};
use crate::meter::{CommEvent, CommOp, CommTag, Meter, MeterSnapshot};
use crate::ring_comm::{self, OpKind, RingHandle, RingShared, Role};
use crate::{CommOptions, Communicator, PendingCollective, ReduceOp, ShardSpec, ThreadCommBackend};

/// Key identifying one in-flight collective: the interned participating
/// group plus that group's per-member operation sequence number. Matching
/// follows MPI semantics: members issue a group's collectives in order.
type OpKey = (GroupId, u64);

/// Reduce stashed per-rank contributions in ascending rank order, so results
/// are bit-deterministic regardless of thread scheduling (floating-point
/// addition is not associative). Shared by allreduce and reduce-scatter —
/// which is what makes a reduce-scatter shard bitwise equal to the same
/// slice of an allreduce — and by *both backends*, which is what makes the
/// ring engine bitwise equal to the mutex engine. `Avg` scaling is applied
/// by the caller.
pub(crate) fn reduce_rank_order<T: AsRef<[f32]>>(
    parts: &BTreeMap<usize, T>,
    op: ReduceOp,
) -> Vec<f32> {
    let mut acc: Option<Vec<f32>> = None;
    for part in parts.values() {
        let part = part.as_ref();
        match acc.as_mut() {
            None => acc = Some(part.to_vec()),
            Some(acc) => {
                debug_assert_eq!(acc.len(), part.len(), "reduction length mismatch");
                match op {
                    ReduceOp::Sum | ReduceOp::Avg => {
                        for (a, b) in acc.iter_mut().zip(part) {
                            *a += *b;
                        }
                    }
                    ReduceOp::Max => {
                        for (a, b) in acc.iter_mut().zip(part) {
                            *a = a.max(*b);
                        }
                    }
                }
            }
        }
    }
    acc.expect("at least one contribution")
}

#[derive(Default)]
struct OpSlot {
    /// Reduction accumulator or broadcast payload.
    buf: Option<Vec<f32>>,
    /// Per-rank contributions for allgather.
    gather: BTreeMap<usize, Vec<f32>>,
    arrived: usize,
    ready: bool,
    done: usize,
}

struct CommCore {
    world: usize,
    backend: ThreadCommBackend,
    /// Mutex-engine rendezvous mailboxes (unused rendezvous-wise by the
    /// ring engine, which keeps all state rank-local).
    slots: Mutex<HashMap<OpKey, OpSlot>>,
    cond: Condvar,
    /// World-shared group interner: every rank maps the same member set to
    /// the same [`GroupId`], so ids double as ring wire keys.
    groups: GroupTable,
    /// Ring-engine park/unpark plumbing; `Some` iff the backend is `Ring`.
    ring: Option<RingShared>,
    meter: Meter,
    cost: crate::CollectiveCostModel,
}

/// Rank-local mutable state (interior mutability because trait methods take
/// `&self`; uncontended — one thread per handle, so this lock never blocks).
struct HandleState {
    /// Group intern cache + matching-order sequence counters.
    groups: HandleGroups,
    /// This rank's ring endpoints; `Some` iff the backend is `Ring`.
    ring: Option<RingHandle>,
    /// Precomputed `[0, world)` so world collectives skip the allocation.
    world_group: Vec<usize>,
}

/// A communicator whose ranks are OS threads within this process.
///
/// Create a full world with [`ThreadComm::world`] (one handle per rank) or
/// run a closure on every rank with [`ThreadComm::run`]; both take the
/// backend from the environment (see [`ThreadCommBackend::from_env`]), and
/// [`ThreadComm::world_with`]/[`ThreadComm::run_with`] accept explicit
/// [`CommOptions`]. Handles share the rendezvous core and traffic meter;
/// each handle is owned by exactly one thread.
///
/// Collectives come in blocking form ([`Communicator::allreduce_group`],
/// [`Communicator::broadcast_group`]) and split begin/complete form
/// ([`Communicator::begin_allreduce`], [`Communicator::begin_broadcast`],
/// [`Communicator::complete`]). The blocking form is implemented as
/// begin-then-complete, so both paths share one rendezvous code path and
/// produce bitwise-identical results. `begin_*` never blocks: an allreduce
/// contribution is stashed (mutex engine) or pushed to the group leader's
/// ring (ring engine), and a broadcast root posts its payload immediately.
pub struct ThreadComm {
    rank: usize,
    core: Arc<CommCore>,
    state: Mutex<HandleState>,
}

impl ThreadComm {
    /// Create handles for a world of `n` ranks with default options (the
    /// InfiniBand-EDR cost model and the environment-selected backend).
    pub fn world(n: usize) -> Vec<ThreadComm> {
        Self::world_with(n, CommOptions::default())
    }

    /// Create handles for a world of `n` ranks with a custom cost model.
    pub fn world_with_cost(n: usize, cost: crate::CollectiveCostModel) -> Vec<ThreadComm> {
        Self::world_with(n, CommOptions { cost, ..CommOptions::default() })
    }

    /// Create handles for a world of `n` ranks with explicit
    /// [`CommOptions`] (backend, cost model, ring capacity, pinning).
    pub fn world_with(n: usize, opts: CommOptions) -> Vec<ThreadComm> {
        assert!(n > 0, "world size must be positive");
        let core = Arc::new(CommCore {
            world: n,
            backend: opts.backend,
            slots: Mutex::new(HashMap::new()),
            cond: Condvar::new(),
            groups: GroupTable::default(),
            ring: (opts.backend == ThreadCommBackend::Ring).then(|| RingShared::new(n)),
            meter: Meter::new(),
            cost: opts.cost,
        });
        let meshes: Vec<Option<RingHandle>> = match opts.backend {
            ThreadCommBackend::Ring => {
                ring_comm::build_mesh(n, opts.ring_capacity).into_iter().map(Some).collect()
            }
            ThreadCommBackend::Mutex => (0..n).map(|_| None).collect(),
        };
        meshes
            .into_iter()
            .enumerate()
            .map(|(rank, mesh)| ThreadComm {
                rank,
                core: Arc::clone(&core),
                state: Mutex::new(HandleState {
                    groups: HandleGroups::new(rank, n),
                    ring: mesh,
                    world_group: (0..n).collect(),
                }),
            })
            .collect()
    }

    /// Spawn `n` rank threads, run `f` on each with its communicator, and
    /// return the per-rank results in rank order.
    pub fn run<R, F>(n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&ThreadComm) -> R + Sync,
    {
        Self::run_with(n, CommOptions::default(), f)
    }

    /// [`ThreadComm::run`] with a custom collective cost model.
    pub fn run_with_cost<R, F>(n: usize, cost: crate::CollectiveCostModel, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&ThreadComm) -> R + Sync,
    {
        Self::run_with(n, CommOptions { cost, ..CommOptions::default() }, f)
    }

    /// [`ThreadComm::run`] with explicit [`CommOptions`]. When
    /// `opts.pin_cores` is set, rank `r` pins itself to core
    /// `r % available_parallelism` before running `f`.
    pub fn run_with<R, F>(n: usize, opts: CommOptions, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&ThreadComm) -> R + Sync,
    {
        let pin = opts.pin_cores;
        let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
        let comms = Self::world_with(n, opts);
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .iter()
                .map(|comm| {
                    scope.spawn(move || {
                        if pin {
                            let _ = crate::affinity::pin_current_thread(comm.rank() % cores);
                        }
                        f(comm)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("rank thread panicked")).collect()
        })
    }

    /// The engine this world runs on.
    pub fn backend(&self) -> ThreadCommBackend {
        self.core.backend
    }
}

impl Communicator for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.core.world
    }

    fn allreduce(&self, buf: &mut [f32], op: ReduceOp) {
        let group = { self.state.lock().unwrap().world_group.clone() };
        self.allreduce_group(buf, op, &group);
    }

    fn allreduce_group(&self, buf: &mut [f32], op: ReduceOp, group: &[usize]) {
        let pending = self.begin_allreduce(buf, op, group, CommTag::Untagged);
        self.complete(pending, buf);
    }

    fn begin_allreduce(
        &self,
        buf: &[f32],
        op: ReduceOp,
        group: &[usize],
        tag: CommTag,
    ) -> PendingCollective {
        let mut st = self.state.lock().unwrap();
        let (gid, members) = st.groups.resolve(&self.core.groups, group);
        let p = members.len();
        if p == 1 {
            // Sum/Avg/Max over a singleton group is the identity.
            return PendingCollective::ready(buf.to_vec(), tag);
        }
        let seq = st.groups.next_seq(gid);

        if let Some(shared) = &self.core.ring {
            let ring = st.ring.as_mut().expect("ring backend carries a ring handle");
            let leader = members[0];
            if self.rank == leader {
                ring.insert_role(
                    gid,
                    seq,
                    Role::Leader { kind: OpKind::Allreduce(op), own: buf.into(), members, tag },
                );
            } else {
                ring.send_contribution(shared, leader, gid, seq, buf.into());
                ring.insert_role(gid, seq, Role::Member { src: leader });
            }
            return PendingCollective::in_flight((gid, seq), p, tag);
        }

        let key = (gid, seq);
        let bytes = std::mem::size_of_val(buf);
        let mut slots = self.core.slots.lock().unwrap();
        let slot = slots.entry(key).or_default();
        // Stash contributions per rank; the last arriver reduces them in
        // rank order so results are bit-deterministic regardless of
        // thread scheduling (floating-point addition is not associative).
        slot.gather.insert(self.rank, buf.to_vec());
        slot.arrived += 1;
        if slot.arrived == p {
            // The last arriver reduces the stashed contributions in rank
            // order (see `reduce_rank_order`).
            let mut result = reduce_rank_order(&slot.gather, op);
            if op == ReduceOp::Avg {
                let inv = 1.0 / p as f32;
                for v in result.iter_mut() {
                    *v *= inv;
                }
            }
            slot.buf = Some(result);
            slot.gather.clear();
            slot.ready = true;
            self.core.meter.record(CommEvent {
                op: CommOp::Allreduce,
                bytes,
                group_size: p,
                seconds: self.core.cost.allreduce(bytes, p),
                tag,
            });
            self.core.cond.notify_all();
        }
        PendingCollective::in_flight(key, p, tag)
    }

    fn broadcast(&self, buf: &mut [f32], root: usize) {
        let group = { self.state.lock().unwrap().world_group.clone() };
        self.broadcast_group(buf, root, &group);
    }

    fn broadcast_group(&self, buf: &mut [f32], root: usize, group: &[usize]) {
        let pending = self.begin_broadcast(buf, root, group, CommTag::Untagged);
        self.complete(pending, buf);
    }

    fn begin_broadcast(
        &self,
        buf: &[f32],
        root: usize,
        group: &[usize],
        tag: CommTag,
    ) -> PendingCollective {
        let mut st = self.state.lock().unwrap();
        let (gid, members) = st.groups.resolve(&self.core.groups, group);
        assert!(members.contains(&root), "broadcast root {root} not in group {:?}", &*members);
        let p = members.len();
        if p == 1 {
            return PendingCollective::noop(tag);
        }
        let seq = st.groups.next_seq(gid);
        let bytes = std::mem::size_of_val(buf);

        if let Some(shared) = &self.core.ring {
            let ring = st.ring.as_mut().expect("ring backend carries a ring handle");
            if self.rank == root {
                self.core.meter.record(CommEvent {
                    op: CommOp::Broadcast,
                    bytes,
                    group_size: p,
                    seconds: self.core.cost.broadcast(bytes, p),
                    tag,
                });
                ring.scatter_payload(shared, gid, seq, &members, buf);
                // The root's buffer already holds the payload.
                return PendingCollective::noop(tag);
            }
            ring.insert_role(gid, seq, Role::Member { src: root });
            return PendingCollective::in_flight((gid, seq), p, tag);
        }

        let key = (gid, seq);
        if self.rank == root {
            let mut slots = self.core.slots.lock().unwrap();
            let slot = slots.entry(key).or_default();
            slot.buf = Some(buf.to_vec());
            slot.ready = true;
            slot.done += 1;
            let remove = slot.done == p;
            self.core.meter.record(CommEvent {
                op: CommOp::Broadcast,
                bytes,
                group_size: p,
                seconds: self.core.cost.broadcast(bytes, p),
                tag,
            });
            self.core.cond.notify_all();
            if remove {
                slots.remove(&key);
            }
            // The root's buffer already holds the payload.
            return PendingCollective::noop(tag);
        }
        PendingCollective::in_flight(key, p, tag)
    }

    fn complete(&self, pending: PendingCollective, buf: &mut [f32]) {
        let mut pending = pending;
        if let Some(payload) = pending.take_payload() {
            buf.copy_from_slice(&payload);
            return;
        }
        let Some(ticket) = pending.take_ticket() else {
            return; // No-op completion (broadcast root, singleton group).
        };
        let (gid, seq) = ticket.key;

        if let Some(shared) = &self.core.ring {
            let mut st = self.state.lock().unwrap();
            let ring = st.ring.as_mut().expect("ring backend carries a ring handle");
            let payload = ring.complete_vec(shared, &self.core.meter, &self.core.cost, gid, seq);
            match &ticket.shard {
                // Reduce-scatter: the engine delivered the full reduction
                // (one shared `Arc`); copy out this rank's owned ranges.
                Some(ranges) => {
                    let mut off = 0;
                    for &(start, len) in ranges {
                        buf[off..off + len].copy_from_slice(&payload[start..start + len]);
                        off += len;
                    }
                    debug_assert_eq!(off, buf.len(), "buffer sized to owned shards");
                }
                None => buf.copy_from_slice(&payload),
            }
            return;
        }

        let mut slots = self.core.slots.lock().unwrap();
        loop {
            {
                // `entry` rather than `get`: a broadcast receiver may reach
                // completion before the root has posted the slot.
                let slot = slots.entry(ticket.key).or_default();
                if slot.ready {
                    let full = slot.buf.as_ref().expect("result present");
                    match &ticket.shard {
                        // Reduce-scatter: copy only this rank's owned ranges,
                        // concatenated.
                        Some(ranges) => {
                            let mut off = 0;
                            for &(start, len) in ranges {
                                buf[off..off + len].copy_from_slice(&full[start..start + len]);
                                off += len;
                            }
                            debug_assert_eq!(off, buf.len(), "buffer sized to owned shards");
                        }
                        None => buf.copy_from_slice(full),
                    }
                    slot.done += 1;
                    if slot.done == ticket.participants {
                        slots.remove(&ticket.key);
                    }
                    return;
                }
            }
            slots = self.core.cond.wait(slots).unwrap();
        }
    }

    fn poll_ready(&self, pending: &PendingCollective) -> bool {
        if pending.is_eager() {
            return true;
        }
        let ticket = pending.ticket().expect("non-eager handle carries a ticket");
        let (gid, seq) = ticket.key;
        if self.core.ring.is_some() {
            let mut st = self.state.lock().unwrap();
            return st.ring.as_mut().expect("ring backend carries a ring handle").poll(gid, seq);
        }
        // Slot absent ⇒ not ready: a slot cannot be retired before *this*
        // rank contributes its `done` in `complete`, so absence here means
        // no participant has begun the collective yet (a broadcast receiver
        // polling before the root posts).
        let slots = self.core.slots.lock().unwrap();
        slots.get(&ticket.key).is_some_and(|slot| slot.ready)
    }

    fn allgather(&self, send: &[f32]) -> Vec<f32> {
        let mut st = self.state.lock().unwrap();
        let HandleState { groups, ring, world_group } = &mut *st;
        let (gid, members) = groups.resolve(&self.core.groups, world_group);
        let p = members.len();
        if p == 1 {
            return send.to_vec();
        }
        let seq = groups.next_seq(gid);
        let bytes = std::mem::size_of_val(send);

        if let Some(shared) = &self.core.ring {
            let ring = ring.as_mut().expect("ring backend carries a ring handle");
            let leader = members[0];
            if self.rank == leader {
                ring.insert_role(
                    gid,
                    seq,
                    Role::Leader {
                        kind: OpKind::AllgatherBlocking,
                        own: send.into(),
                        members,
                        tag: CommTag::Untagged,
                    },
                );
            } else {
                ring.send_contribution(shared, leader, gid, seq, send.into());
                ring.insert_role(gid, seq, Role::Member { src: leader });
            }
            return ring.complete_vec(shared, &self.core.meter, &self.core.cost, gid, seq).to_vec();
        }

        let key = (gid, seq);
        let mut slots = self.core.slots.lock().unwrap();
        {
            let slot = slots.entry(key).or_default();
            slot.gather.insert(self.rank, send.to_vec());
            slot.arrived += 1;
            if slot.arrived == p {
                slot.ready = true;
                self.core.meter.record(CommEvent {
                    op: CommOp::Allgather,
                    bytes,
                    group_size: p,
                    seconds: self.core.cost.allgather(bytes, p),
                    tag: CommTag::Untagged,
                });
                self.core.cond.notify_all();
            }
        }
        loop {
            {
                let slot = slots.get_mut(&key).expect("slot vanished before completion");
                if slot.ready {
                    let mut out = Vec::new();
                    for (_, part) in slot.gather.iter() {
                        out.extend_from_slice(part);
                    }
                    slot.done += 1;
                    if slot.done == p {
                        slots.remove(&key);
                    }
                    return out;
                }
            }
            slots = self.core.cond.wait(slots).unwrap();
        }
    }

    fn reduce_scatter(&self, send: &[f32]) -> Vec<f32> {
        let group = { self.state.lock().unwrap().world_group.clone() };
        let p = group.len();
        // Pad-and-trim shard boundaries: with chunk = ⌈len / p⌉, rank k owns
        // result[k·chunk .. min((k+1)·chunk, len)] — trailing ranks may
        // receive short or empty chunks when the length does not divide.
        let chunk = send.len().div_ceil(p);
        let shards: Vec<ShardSpec> = group
            .iter()
            .map(|&k| {
                let start = (k * chunk).min(send.len());
                ShardSpec { owner: k, start, len: chunk.min(send.len() - start) }
            })
            .collect();
        let mut out = vec![0.0f32; shards[self.rank].len];
        let pending =
            self.begin_reduce_scatter(send, ReduceOp::Sum, &group, &shards, CommTag::Untagged);
        self.complete(pending, &mut out);
        out
    }

    fn begin_reduce_scatter(
        &self,
        buf: &[f32],
        op: ReduceOp,
        group: &[usize],
        shards: &[ShardSpec],
        tag: CommTag,
    ) -> PendingCollective {
        let mut st = self.state.lock().unwrap();
        let (gid, members) = st.groups.resolve(&self.core.groups, group);
        let p = members.len();
        // Validate the shard tiling on this rank's view; every member must
        // pass an identical spec (same contract as matching collectives).
        let mut end = 0usize;
        for s in shards {
            assert_eq!(s.start, end, "shards must tile the payload contiguously");
            assert!(
                members.contains(&s.owner),
                "shard owner {} not in group {:?}",
                s.owner,
                &*members
            );
            end += s.len;
        }
        assert_eq!(end, buf.len(), "shards must cover the whole payload");
        let ranges: Vec<(usize, usize)> =
            shards.iter().filter(|s| s.owner == self.rank).map(|s| (s.start, s.len)).collect();
        if p == 1 {
            let owned: Vec<f32> = ranges
                .iter()
                .flat_map(|&(start, len)| buf[start..start + len].iter().copied())
                .collect();
            return PendingCollective::ready(owned, tag);
        }
        let seq = st.groups.next_seq(gid);

        if let Some(shared) = &self.core.ring {
            let ring = st.ring.as_mut().expect("ring backend carries a ring handle");
            let leader = members[0];
            if self.rank == leader {
                ring.insert_role(
                    gid,
                    seq,
                    Role::Leader { kind: OpKind::ReduceScatter(op), own: buf.into(), members, tag },
                );
            } else {
                ring.send_contribution(shared, leader, gid, seq, buf.into());
                ring.insert_role(gid, seq, Role::Member { src: leader });
            }
            // The leader shares one full-result `Arc` with every member;
            // the ticket's ranges slice out this rank's shards at `complete`.
            return PendingCollective::in_flight_sharded((gid, seq), p, tag, ranges);
        }

        let key = (gid, seq);
        let bytes = std::mem::size_of_val(buf);
        let mut slots = self.core.slots.lock().unwrap();
        let slot = slots.entry(key).or_default();
        slot.gather.insert(self.rank, buf.to_vec());
        slot.arrived += 1;
        if slot.arrived == p {
            // Reduce-then-slice over the rendezvous core: the same rank-order
            // reduction as allreduce, so each shard is bitwise the same slice
            // an allreduce would produce. The meter charges the ring
            // reduce-scatter model — half a ring allreduce — once per
            // collective, not per rank.
            let mut result = reduce_rank_order(&slot.gather, op);
            if op == ReduceOp::Avg {
                let inv = 1.0 / p as f32;
                for v in result.iter_mut() {
                    *v *= inv;
                }
            }
            slot.buf = Some(result);
            slot.gather.clear();
            slot.ready = true;
            self.core.meter.record(CommEvent {
                op: CommOp::ReduceScatter,
                bytes: bytes / 2,
                group_size: p,
                seconds: self.core.cost.reduce_scatter(bytes, p),
                tag,
            });
            self.core.cond.notify_all();
        }
        PendingCollective::in_flight_sharded(key, p, tag, ranges)
    }

    fn begin_allgather(&self, buf: &[f32], group: &[usize], tag: CommTag) -> PendingCollective {
        let mut st = self.state.lock().unwrap();
        let (gid, members) = st.groups.resolve(&self.core.groups, group);
        let p = members.len();
        if p == 1 {
            return PendingCollective::ready(buf.to_vec(), tag);
        }
        let seq = st.groups.next_seq(gid);

        if let Some(shared) = &self.core.ring {
            let ring = st.ring.as_mut().expect("ring backend carries a ring handle");
            let leader = members[0];
            if self.rank == leader {
                ring.insert_role(
                    gid,
                    seq,
                    Role::Leader { kind: OpKind::AllgatherBegin, own: buf.into(), members, tag },
                );
            } else {
                ring.send_contribution(shared, leader, gid, seq, buf.into());
                ring.insert_role(gid, seq, Role::Member { src: leader });
            }
            return PendingCollective::in_flight((gid, seq), p, tag);
        }

        let key = (gid, seq);
        let mut slots = self.core.slots.lock().unwrap();
        let slot = slots.entry(key).or_default();
        slot.gather.insert(self.rank, buf.to_vec());
        slot.arrived += 1;
        if slot.arrived == p {
            // Concatenate contributions in group rank order (BTreeMap keys
            // ascend). Contribution lengths may differ per member.
            let mut out = Vec::new();
            for part in slot.gather.values() {
                out.extend_from_slice(part);
            }
            let total_bytes = std::mem::size_of::<f32>() * out.len();
            slot.buf = Some(out);
            slot.gather.clear();
            slot.ready = true;
            self.core.meter.record(CommEvent {
                op: CommOp::Allgather,
                // The gather half of a ring allreduce (see CommEvent::bytes).
                bytes: total_bytes / 2,
                group_size: p,
                seconds: self.core.cost.allgather(total_bytes.div_ceil(p), p),
                tag,
            });
            self.core.cond.notify_all();
        }
        PendingCollective::in_flight(key, p, tag)
    }

    fn barrier(&self) {
        let mut st = self.state.lock().unwrap();
        let HandleState { groups, ring, world_group } = &mut *st;
        let (gid, members) = groups.resolve(&self.core.groups, world_group);
        let p = members.len();
        if p == 1 {
            return;
        }
        let seq = groups.next_seq(gid);

        if let Some(shared) = &self.core.ring {
            let ring = ring.as_mut().expect("ring backend carries a ring handle");
            // Sense-reversing atomic barrier — no messages; the last arriver
            // meters the collective once (the mutex backend's convention).
            if ring.barrier(shared, gid, p) {
                self.core.meter.record(CommEvent {
                    op: CommOp::Barrier,
                    bytes: 0,
                    group_size: p,
                    seconds: self.core.cost.barrier(p),
                    tag: CommTag::Untagged,
                });
            }
            return;
        }

        let key = (gid, seq);
        let mut slots = self.core.slots.lock().unwrap();
        {
            let slot = slots.entry(key).or_default();
            slot.arrived += 1;
            if slot.arrived == p {
                slot.ready = true;
                self.core.meter.record(CommEvent {
                    op: CommOp::Barrier,
                    bytes: 0,
                    group_size: p,
                    seconds: self.core.cost.barrier(p),
                    tag: CommTag::Untagged,
                });
                self.core.cond.notify_all();
            }
        }
        loop {
            {
                let slot = slots.get_mut(&key).expect("slot vanished before completion");
                if slot.ready {
                    slot.done += 1;
                    if slot.done == p {
                        slots.remove(&key);
                    }
                    return;
                }
            }
            slots = self.core.cond.wait(slots).unwrap();
        }
    }

    fn meter_snapshot(&self) -> MeterSnapshot {
        self.core.meter.snapshot()
    }
}

#[cfg(test)]
fn backends() -> [CommOptions; 2] {
    [
        CommOptions { backend: ThreadCommBackend::Ring, ..CommOptions::default() },
        CommOptions { backend: ThreadCommBackend::Mutex, ..CommOptions::default() },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_sum_all_ranks() {
        for opts in backends() {
            let results = ThreadComm::run_with(4, opts, |comm| {
                let mut buf = vec![(comm.rank() + 1) as f32; 3];
                comm.allreduce(&mut buf, ReduceOp::Sum);
                buf
            });
            for r in results {
                assert_eq!(r, vec![10.0; 3]); // 1+2+3+4
            }
        }
    }

    #[test]
    fn allreduce_avg() {
        for opts in backends() {
            let results = ThreadComm::run_with(5, opts, |comm| {
                let mut buf = vec![comm.rank() as f32];
                comm.allreduce(&mut buf, ReduceOp::Avg);
                buf[0]
            });
            for r in results {
                assert!((r - 2.0).abs() < 1e-6); // (0+1+2+3+4)/5
            }
        }
    }

    #[test]
    fn allreduce_max() {
        for opts in backends() {
            let results = ThreadComm::run_with(3, opts, |comm| {
                let mut buf = vec![-(comm.rank() as f32), comm.rank() as f32];
                comm.allreduce(&mut buf, ReduceOp::Max);
                buf
            });
            for r in results {
                assert_eq!(r, vec![0.0, 2.0]);
            }
        }
    }

    #[test]
    fn broadcast_from_each_root() {
        for opts in backends() {
            for root in 0..3 {
                let results = ThreadComm::run_with(3, opts.clone(), move |comm| {
                    let mut buf =
                        if comm.rank() == root { vec![42.0, root as f32] } else { vec![0.0, 0.0] };
                    comm.broadcast(&mut buf, root);
                    buf
                });
                for r in results {
                    assert_eq!(r, vec![42.0, root as f32]);
                }
            }
        }
    }

    #[test]
    fn broadcast_disjoint_groups_concurrently() {
        // The HYBRID-OPT pattern: two disjoint broadcast groups running
        // simultaneously must not interfere.
        for opts in backends() {
            let results = ThreadComm::run_with(4, opts, |comm| {
                let (group, root, value) = if comm.rank() < 2 {
                    (vec![0usize, 1], 0usize, 7.0f32)
                } else {
                    (vec![2usize, 3], 3usize, 9.0f32)
                };
                let mut buf = if comm.rank() == root { vec![value] } else { vec![0.0] };
                comm.broadcast_group(&mut buf, root, &group);
                buf[0]
            });
            assert_eq!(results, vec![7.0, 7.0, 9.0, 9.0]);
        }
    }

    #[test]
    fn allreduce_subgroup() {
        for opts in backends() {
            let results = ThreadComm::run_with(4, opts, |comm| {
                if comm.rank() % 2 == 0 {
                    let mut buf = vec![comm.rank() as f32];
                    comm.allreduce_group(&mut buf, ReduceOp::Sum, &[0, 2]);
                    Some(buf[0])
                } else {
                    None
                }
            });
            assert_eq!(results[0], Some(2.0));
            assert_eq!(results[2], Some(2.0));
        }
    }

    #[test]
    fn allgather_rank_order() {
        for opts in backends() {
            let results = ThreadComm::run_with(3, opts, |comm| {
                comm.allgather(&[comm.rank() as f32 * 10.0, 1.0])
            });
            for r in results {
                assert_eq!(r, vec![0.0, 1.0, 10.0, 1.0, 20.0, 1.0]);
            }
        }
    }

    #[test]
    fn repeated_collectives_in_order() {
        // Back-to-back collectives on the same group must match pairwise.
        for opts in backends() {
            let results = ThreadComm::run_with(4, opts, |comm| {
                let mut out = Vec::new();
                for round in 0..10 {
                    let mut buf = vec![(comm.rank() + round) as f32];
                    comm.allreduce(&mut buf, ReduceOp::Sum);
                    out.push(buf[0]);
                }
                out
            });
            for r in &results {
                for (round, &v) in r.iter().enumerate() {
                    assert_eq!(v, (6 + 4 * round) as f32);
                }
            }
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for opts in backends() {
            let counter = AtomicUsize::new(0);
            ThreadComm::run_with(8, opts, |comm| {
                counter.fetch_add(1, Ordering::SeqCst);
                comm.barrier();
                // After the barrier, every rank's increment must be visible.
                assert_eq!(counter.load(Ordering::SeqCst), 8);
            });
        }
    }

    #[test]
    fn meter_counts_collectives_identically_across_backends() {
        let mut snaps = Vec::new();
        for opts in backends() {
            let comms = ThreadComm::world_with(2, opts);
            std::thread::scope(|s| {
                for comm in &comms {
                    s.spawn(move || {
                        let mut buf = vec![1.0f32; 16];
                        comm.allreduce(&mut buf, ReduceOp::Sum);
                        comm.broadcast(&mut buf, 0);
                    });
                }
            });
            let snap = comms[0].meter_snapshot();
            assert_eq!(snap.calls(CommOp::Allreduce), 1);
            assert_eq!(snap.calls(CommOp::Broadcast), 1);
            assert_eq!(snap.bytes(CommOp::Allreduce), 64);
            assert!(snap.simulated_seconds > 0.0);
            snaps.push(snap);
        }
        // Satellite guarantee: metered traffic is backend-invariant.
        assert_eq!(snaps[0], snaps[1], "ring and mutex backends must meter identical traffic");
    }

    #[test]
    fn world_of_one_is_noop() {
        for opts in backends() {
            let results = ThreadComm::run_with(1, opts, |comm| {
                let mut buf = vec![5.0f32];
                comm.allreduce(&mut buf, ReduceOp::Sum);
                comm.broadcast(&mut buf, 0);
                comm.barrier();
                let g = comm.allgather(&buf);
                (buf[0], g)
            });
            assert_eq!(results[0], (5.0, vec![5.0]));
        }
    }

    #[test]
    fn many_ranks_stress() {
        let n = 16;
        for opts in backends() {
            let results = ThreadComm::run_with(n, opts, |comm| {
                let mut acc = 0.0f32;
                for _ in 0..50 {
                    let mut buf = vec![1.0f32; 4];
                    comm.allreduce(&mut buf, ReduceOp::Sum);
                    acc += buf[0];
                }
                acc
            });
            for r in results {
                assert_eq!(r, 50.0 * n as f32);
            }
        }
    }

    #[test]
    fn backend_accessor_reports_engine() {
        let ring = ThreadComm::world_with(
            2,
            CommOptions { backend: ThreadCommBackend::Ring, ..CommOptions::default() },
        );
        assert_eq!(ring[0].backend(), ThreadCommBackend::Ring);
        let mutex = ThreadComm::world_with(
            2,
            CommOptions { backend: ThreadCommBackend::Mutex, ..CommOptions::default() },
        );
        assert_eq!(mutex[1].backend(), ThreadCommBackend::Mutex);
    }
}

#[cfg(test)]
mod pending_tests {
    use super::*;

    #[test]
    fn begin_allreduce_overlaps_local_work() {
        for opts in backends() {
            let results = ThreadComm::run_with(4, opts, |comm| {
                let contribution = vec![(comm.rank() + 1) as f32; 8];
                let pending = comm.begin_allreduce(
                    &contribution,
                    ReduceOp::Sum,
                    &[0, 1, 2, 3],
                    CommTag::FactorComm,
                );
                // Local "compute" overlapped with the in-flight collective.
                let local: f32 = (0..100).map(|i| i as f32).sum();
                let mut out = vec![0.0f32; 8];
                comm.complete(pending, &mut out);
                (local, out)
            });
            for (local, out) in results {
                assert_eq!(local, 4950.0);
                assert_eq!(out, vec![10.0; 8]);
            }
        }
    }

    #[test]
    fn begin_broadcast_root_is_immediate() {
        for opts in backends() {
            let results = ThreadComm::run_with(3, opts, |comm| {
                let mut buf = if comm.rank() == 1 { vec![3.0f32, 4.0] } else { vec![0.0f32; 2] };
                let pending = comm.begin_broadcast(&buf, 1, &[0, 1, 2], CommTag::EigComm);
                comm.complete(pending, &mut buf);
                buf
            });
            for r in results {
                assert_eq!(r, vec![3.0, 4.0]);
            }
        }
    }

    #[test]
    fn split_and_blocking_forms_match_bitwise_on_both_backends() {
        // Awkward float values whose sum depends on association order; the
        // split path must reduce in exactly the same order as blocking, and
        // both backends in exactly the same order as each other.
        let mut all: Vec<Vec<Vec<u32>>> = Vec::new();
        for opts in backends() {
            let blocking = ThreadComm::run_with(4, opts.clone(), |comm| {
                let mut buf: Vec<f32> =
                    (0..16).map(|i| 0.1 + comm.rank() as f32 * 1e-7 + i as f32 * 0.3).collect();
                comm.allreduce(&mut buf, ReduceOp::Avg);
                buf
            });
            let split = ThreadComm::run_with(4, opts, |comm| {
                let contribution: Vec<f32> =
                    (0..16).map(|i| 0.1 + comm.rank() as f32 * 1e-7 + i as f32 * 0.3).collect();
                let pending = comm.begin_allreduce(
                    &contribution,
                    ReduceOp::Avg,
                    &[0, 1, 2, 3],
                    CommTag::Untagged,
                );
                let mut out = vec![0.0f32; 16];
                comm.complete(pending, &mut out);
                out
            });
            let bits = |rows: &[Vec<f32>]| -> Vec<Vec<u32>> {
                rows.iter().map(|r| r.iter().map(|v| v.to_bits()).collect()).collect()
            };
            assert_eq!(bits(&blocking), bits(&split));
            all.push(bits(&blocking));
        }
        assert_eq!(all[0], all[1], "ring and mutex backends must agree bitwise");
    }

    #[test]
    fn multiple_in_flight_collectives_complete_out_of_order() {
        // Begin several collectives on different groups, then complete them
        // in reverse order — the per-group sequence numbers keep matching
        // correct.
        for opts in backends() {
            let results = ThreadComm::run_with(4, opts, |comm| {
                let mine = vec![comm.rank() as f32 + 1.0; 4];
                let p_world =
                    comm.begin_allreduce(&mine, ReduceOp::Sum, &[0, 1, 2, 3], CommTag::FactorComm);
                let pair = if comm.rank() < 2 { vec![0usize, 1] } else { vec![2usize, 3] };
                let p_pair = comm.begin_allreduce(&mine, ReduceOp::Sum, &pair, CommTag::GradComm);
                let mut pair_out = vec![0.0f32; 4];
                let mut world_out = vec![0.0f32; 4];
                comm.complete(p_pair, &mut pair_out);
                comm.complete(p_world, &mut world_out);
                (pair_out[0], world_out[0])
            });
            assert_eq!(results, vec![(3.0, 10.0), (3.0, 10.0), (7.0, 10.0), (7.0, 10.0)]);
        }
    }

    #[test]
    fn poll_ready_reflects_rendezvous_state() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for opts in backends() {
            let begun = AtomicUsize::new(0);
            ThreadComm::run_with(2, opts, |comm| {
                let buf = vec![comm.rank() as f32; 4];
                if comm.rank() == 0 {
                    let pending =
                        comm.begin_allreduce(&buf, ReduceOp::Sum, &[0, 1], CommTag::FactorComm);
                    // Only rank 0 has begun: the collective cannot be ready.
                    assert!(!comm.poll_ready(&pending));
                    begun.store(1, Ordering::SeqCst);
                    // Wait (outside the rendezvous) for rank 1 to contribute,
                    // then the poll must flip to ready without completing.
                    while begun.load(Ordering::SeqCst) != 2 {
                        std::thread::yield_now();
                    }
                    assert!(comm.poll_ready(&pending));
                    let mut out = vec![0.0f32; 4];
                    comm.complete(pending, &mut out);
                    assert_eq!(out, vec![1.0; 4]);
                } else {
                    while begun.load(Ordering::SeqCst) != 1 {
                        std::thread::yield_now();
                    }
                    let pending =
                        comm.begin_allreduce(&buf, ReduceOp::Sum, &[0, 1], CommTag::FactorComm);
                    // Both contributions are in: ready on the late arriver
                    // too. (Rank 1 is a ring-engine member, so its readiness
                    // comes from the leader's result push — wait for it.)
                    while !comm.poll_ready(&pending) {
                        begun.store(2, Ordering::SeqCst);
                        std::thread::yield_now();
                    }
                    begun.store(2, Ordering::SeqCst);
                    let mut out = vec![0.0f32; 4];
                    comm.complete(pending, &mut out);
                    assert_eq!(out, vec![1.0; 4]);
                }
            });
        }
    }

    #[test]
    fn poll_ready_eager_handles_are_always_ready() {
        for opts in backends() {
            ThreadComm::run_with(1, opts, |comm| {
                let pending = comm.begin_allreduce(&[1.0], ReduceOp::Sum, &[0], CommTag::Untagged);
                assert!(comm.poll_ready(&pending));
                let mut out = vec![0.0f32];
                comm.complete(pending, &mut out);
                let noop = PendingCollective::noop(CommTag::Untagged);
                assert!(comm.poll_ready(&noop));
                comm.complete(noop, &mut []);
            });
        }
    }

    #[test]
    fn poll_ready_broadcast_receiver_waits_for_root() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for opts in backends() {
            let stage = AtomicUsize::new(0);
            ThreadComm::run_with(2, opts, |comm| {
                if comm.rank() == 1 {
                    // Receiver begins first: payload not yet posted by root.
                    let pending = comm.begin_broadcast(&[0.0, 0.0], 0, &[0, 1], CommTag::EigComm);
                    assert!(!comm.poll_ready(&pending));
                    stage.store(1, Ordering::SeqCst);
                    while stage.load(Ordering::SeqCst) != 2 {
                        std::thread::yield_now();
                    }
                    assert!(comm.poll_ready(&pending));
                    let mut out = vec![0.0f32; 2];
                    comm.complete(pending, &mut out);
                    assert_eq!(out, vec![5.0, 6.0]);
                } else {
                    while stage.load(Ordering::SeqCst) != 1 {
                        std::thread::yield_now();
                    }
                    let pending = comm.begin_broadcast(&[5.0, 6.0], 0, &[0, 1], CommTag::EigComm);
                    stage.store(2, Ordering::SeqCst);
                    comm.complete(pending, &mut [5.0, 6.0]);
                }
            });
        }
    }

    #[test]
    fn meter_attributes_bytes_to_tags_identically_across_backends() {
        let mut snaps = Vec::new();
        for opts in backends() {
            let comms = ThreadComm::world_with(2, opts);
            std::thread::scope(|s| {
                for comm in &comms {
                    s.spawn(move || {
                        let buf = vec![1.0f32; 16]; // 64 bytes
                        let p =
                            comm.begin_allreduce(&buf, ReduceOp::Sum, &[0, 1], CommTag::FactorComm);
                        let mut out = vec![0.0f32; 16];
                        comm.complete(p, &mut out);
                        let p = comm.begin_broadcast(&out, 0, &[0, 1], CommTag::GradComm);
                        comm.complete(p, &mut out);
                    });
                }
            });
            let snap = comms[0].meter_snapshot();
            assert_eq!(snap.tag_bytes(CommTag::FactorComm), 64);
            assert_eq!(snap.tag_bytes(CommTag::GradComm), 64);
            assert_eq!(snap.tag_bytes(CommTag::EigComm), 0);
            assert_eq!(snap.tag_calls(CommTag::FactorComm), 1);
            snaps.push(snap);
        }
        // Satellite guarantee: tag attribution is backend-invariant.
        assert_eq!(snaps[0], snaps[1], "ring and mutex backends must meter identical traffic");
    }
}

#[cfg(test)]
mod reduce_scatter_tests {
    use super::*;

    #[test]
    fn reduce_scatter_sums_and_slices() {
        for opts in backends() {
            let results = ThreadComm::run_with(4, opts, |comm| {
                // Each rank contributes [rank, rank, ..] over 4 chunks of 2.
                let send = vec![comm.rank() as f32; 8];
                comm.reduce_scatter(&send)
            });
            // Sum over ranks = 0+1+2+3 = 6 everywhere; each rank gets its
            // chunk.
            for (rank, out) in results.iter().enumerate() {
                assert_eq!(out, &vec![6.0; 2], "rank {rank}");
            }
        }
    }

    #[test]
    fn reduce_scatter_distinct_chunks() {
        for opts in backends() {
            let results = ThreadComm::run_with(2, opts, |comm| {
                // Rank r sends [r*10, r*10+1, r*10+2, r*10+3].
                let send: Vec<f32> = (0..4).map(|i| (comm.rank() * 10 + i) as f32).collect();
                comm.reduce_scatter(&send)
            });
            // Sums: [10, 12, 14, 16]; rank 0 gets [10, 12], rank 1 [14, 16].
            assert_eq!(results[0], vec![10.0, 12.0]);
            assert_eq!(results[1], vec![14.0, 16.0]);
        }
    }

    #[test]
    fn reduce_scatter_world_one() {
        for opts in backends() {
            let results = ThreadComm::run_with(1, opts, |comm| comm.reduce_scatter(&[1.0, 2.0]));
            assert_eq!(results[0], vec![1.0, 2.0]);
        }
    }

    #[test]
    fn reduce_scatter_pads_and_trims_non_divisible_lengths() {
        // 7 elements over 3 ranks: chunk = ⌈7/3⌉ = 3, so the split is
        // [0..3), [3..6), [6..7).
        for opts in backends() {
            let results = ThreadComm::run_with(3, opts, |comm| {
                let send: Vec<f32> = (0..7).map(|i| (comm.rank() + i) as f32).collect();
                comm.reduce_scatter(&send)
            });
            // Sum over ranks of (r + i) = 3i + 3.
            assert_eq!(results[0], vec![3.0, 6.0, 9.0]);
            assert_eq!(results[1], vec![12.0, 15.0, 18.0]);
            assert_eq!(results[2], vec![21.0]);
        }
    }

    #[test]
    fn reduce_scatter_trailing_rank_can_own_nothing() {
        // 2 elements over 4 ranks: chunk = 1; ranks 2 and 3 own nothing.
        for opts in backends() {
            let results = ThreadComm::run_with(4, opts, |comm| comm.reduce_scatter(&[1.0, 2.0]));
            assert_eq!(results[0], vec![4.0]);
            assert_eq!(results[1], vec![8.0]);
            assert_eq!(results[2], Vec::<f32>::new());
            assert_eq!(results[3], Vec::<f32>::new());
        }
    }

    #[test]
    fn begin_reduce_scatter_matches_allreduce_slice_bitwise() {
        // Awkward floats whose sum depends on association order: a shard of
        // the reduce-scatter must be bit-identical to the same slice of an
        // allreduce over the same group — on both backends.
        let mk = |rank: usize| -> Vec<f32> {
            (0..12).map(|i| 0.1 + rank as f32 * 1e-7 + i as f32 * 0.3).collect()
        };
        for opts in backends() {
            let reference = ThreadComm::run_with(4, opts.clone(), |comm| {
                let mut buf = mk(comm.rank());
                comm.allreduce(&mut buf, ReduceOp::Avg);
                buf
            });
            let sharded = ThreadComm::run_with(4, opts, |comm| {
                let buf = mk(comm.rank());
                // Uneven, multi-shard ownership: rank 1 owns two shards.
                let shards = [
                    ShardSpec { owner: 1, start: 0, len: 5 },
                    ShardSpec { owner: 0, start: 5, len: 2 },
                    ShardSpec { owner: 1, start: 7, len: 1 },
                    ShardSpec { owner: 3, start: 8, len: 4 },
                ];
                let pending = comm.begin_reduce_scatter(
                    &buf,
                    ReduceOp::Avg,
                    &[0, 1, 2, 3],
                    &shards,
                    CommTag::FactorReduce,
                );
                let owned: usize =
                    shards.iter().filter(|s| s.owner == comm.rank()).map(|s| s.len).sum();
                let mut out = vec![0.0f32; owned];
                comm.complete(pending, &mut out);
                out
            });
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&sharded[0]), bits(&reference[0][5..7]));
            let rank1: Vec<f32> =
                reference[1][0..5].iter().chain(&reference[1][7..8]).copied().collect();
            assert_eq!(bits(&sharded[1]), bits(&rank1));
            assert_eq!(sharded[2], Vec::<f32>::new());
            assert_eq!(bits(&sharded[3]), bits(&reference[3][8..12]));
        }
    }

    #[test]
    fn begin_allgather_concatenates_variable_lengths_in_rank_order() {
        for opts in backends() {
            let results = ThreadComm::run_with(3, opts, |comm| {
                // Rank r contributes r+1 copies of r·10, but only ranks 0
                // and 2 participate in the group.
                if comm.rank() == 1 {
                    return Vec::new();
                }
                let send = vec![comm.rank() as f32 * 10.0; comm.rank() + 1];
                let pending = comm.begin_allgather(&send, &[0, 2], CommTag::FactorGather);
                let mut out = vec![0.0f32; 4];
                comm.complete(pending, &mut out);
                out
            });
            assert_eq!(results[0], vec![0.0, 20.0, 20.0, 20.0]);
            assert_eq!(results[2], vec![0.0, 20.0, 20.0, 20.0]);
        }
    }

    #[test]
    fn meter_counts_reduce_scatter_once_with_half_volume() {
        for opts in backends() {
            let comms = ThreadComm::world_with(4, opts);
            std::thread::scope(|s| {
                for comm in &comms {
                    s.spawn(move || {
                        let send = vec![1.0f32; 16]; // 64 bytes
                        let _ = comm.reduce_scatter(&send);
                    });
                }
            });
            let snap = comms[0].meter_snapshot();
            // One event for the whole collective (not one per rank), charged
            // the reduce half of a ring allreduce: 64/2 = 32 bytes.
            assert_eq!(snap.calls(CommOp::ReduceScatter), 1);
            assert_eq!(snap.bytes(CommOp::ReduceScatter), 32);
            assert_eq!(snap.calls(CommOp::Allreduce), 0);
        }
    }
}
