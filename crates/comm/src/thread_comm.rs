//! Thread-rank communicator with shared-memory rendezvous collectives.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar, Mutex};

use crate::meter::{CommEvent, CommOp, CommTag, Meter, MeterSnapshot};
use crate::{CollectiveCostModel, Communicator, PendingCollective, ReduceOp, ShardSpec};

/// Key identifying one in-flight collective: the (sorted) participating
/// group plus that group's per-member operation sequence number. Matching
/// follows MPI semantics: members issue a group's collectives in order.
type OpKey = (Vec<usize>, u64);

/// Reduce stashed per-rank contributions in ascending rank order, so results
/// are bit-deterministic regardless of thread scheduling (floating-point
/// addition is not associative). Shared by allreduce and reduce-scatter —
/// which is what makes a reduce-scatter shard bitwise equal to the same
/// slice of an allreduce. `Avg` scaling is applied by the caller.
fn reduce_rank_order(parts: &BTreeMap<usize, Vec<f32>>, op: ReduceOp) -> Vec<f32> {
    let mut acc: Option<Vec<f32>> = None;
    for part in parts.values() {
        match acc.as_mut() {
            None => acc = Some(part.clone()),
            Some(acc) => {
                debug_assert_eq!(acc.len(), part.len(), "reduction length mismatch");
                match op {
                    ReduceOp::Sum | ReduceOp::Avg => {
                        for (a, b) in acc.iter_mut().zip(part) {
                            *a += *b;
                        }
                    }
                    ReduceOp::Max => {
                        for (a, b) in acc.iter_mut().zip(part) {
                            *a = a.max(*b);
                        }
                    }
                }
            }
        }
    }
    acc.expect("at least one contribution")
}

#[derive(Default)]
struct OpSlot {
    /// Reduction accumulator or broadcast payload.
    buf: Option<Vec<f32>>,
    /// Per-rank contributions for allgather.
    gather: BTreeMap<usize, Vec<f32>>,
    arrived: usize,
    ready: bool,
    done: usize,
}

struct CommCore {
    world: usize,
    slots: Mutex<HashMap<OpKey, OpSlot>>,
    cond: Condvar,
    meter: Meter,
    cost: CollectiveCostModel,
}

/// A communicator whose ranks are OS threads within this process.
///
/// Create a full world with [`ThreadComm::world`] (one handle per rank) or
/// run a closure on every rank with [`ThreadComm::run`]. Handles share the
/// rendezvous core and traffic meter; each handle is owned by exactly one
/// thread.
///
/// Collectives come in blocking form ([`Communicator::allreduce_group`],
/// [`Communicator::broadcast_group`]) and split begin/complete form
/// ([`Communicator::begin_allreduce`], [`Communicator::begin_broadcast`],
/// [`Communicator::complete`]). The blocking form is implemented as
/// begin-then-complete, so both paths share one rendezvous code path and
/// produce bitwise-identical results. `begin_*` never blocks: an allreduce
/// contribution is stashed (the last arriver reduces in rank order), and a
/// broadcast root posts its payload immediately.
pub struct ThreadComm {
    rank: usize,
    core: Arc<CommCore>,
    /// Rank-local per-group sequence counters (interior mutability because
    /// trait methods take `&self`; uncontended — one thread per handle).
    seq: Mutex<HashMap<Vec<usize>, u64>>,
}

impl ThreadComm {
    /// Create handles for a world of `n` ranks with the default
    /// (InfiniBand-EDR) cost model.
    pub fn world(n: usize) -> Vec<ThreadComm> {
        Self::world_with_cost(n, CollectiveCostModel::default())
    }

    /// Create handles for a world of `n` ranks with a custom cost model.
    pub fn world_with_cost(n: usize, cost: CollectiveCostModel) -> Vec<ThreadComm> {
        assert!(n > 0, "world size must be positive");
        let core = Arc::new(CommCore {
            world: n,
            slots: Mutex::new(HashMap::new()),
            cond: Condvar::new(),
            meter: Meter::new(),
            cost,
        });
        (0..n)
            .map(|rank| ThreadComm {
                rank,
                core: Arc::clone(&core),
                seq: Mutex::new(HashMap::new()),
            })
            .collect()
    }

    /// Spawn `n` rank threads, run `f` on each with its communicator, and
    /// return the per-rank results in rank order.
    pub fn run<R, F>(n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&ThreadComm) -> R + Sync,
    {
        Self::run_with_cost(n, CollectiveCostModel::default(), f)
    }

    /// [`ThreadComm::run`] with a custom collective cost model.
    pub fn run_with_cost<R, F>(n: usize, cost: CollectiveCostModel, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&ThreadComm) -> R + Sync,
    {
        let comms = Self::world_with_cost(n, cost);
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms.iter().map(|comm| scope.spawn(move || f(comm))).collect();
            handles.into_iter().map(|h| h.join().expect("rank thread panicked")).collect()
        })
    }

    fn next_seq(&self, group: &[usize]) -> u64 {
        let mut seqs = self.seq.lock().unwrap();
        let counter = seqs.entry(group.to_vec()).or_insert(0);
        let s = *counter;
        *counter += 1;
        s
    }

    fn normalize_group(&self, group: &[usize]) -> Vec<usize> {
        let mut g = group.to_vec();
        g.sort_unstable();
        g.dedup();
        assert!(
            g.iter().all(|&r| r < self.core.world),
            "group rank out of range (world={})",
            self.core.world
        );
        assert!(g.contains(&self.rank), "rank {} is not in group {:?}", self.rank, g);
        g
    }

    fn world_group(&self) -> Vec<usize> {
        (0..self.core.world).collect()
    }
}

impl Communicator for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.core.world
    }

    fn allreduce(&self, buf: &mut [f32], op: ReduceOp) {
        let group = self.world_group();
        self.allreduce_group(buf, op, &group);
    }

    fn allreduce_group(&self, buf: &mut [f32], op: ReduceOp, group: &[usize]) {
        let pending = self.begin_allreduce(buf, op, group, CommTag::Untagged);
        self.complete(pending, buf);
    }

    fn begin_allreduce(
        &self,
        buf: &[f32],
        op: ReduceOp,
        group: &[usize],
        tag: CommTag,
    ) -> PendingCollective {
        let group = self.normalize_group(group);
        let p = group.len();
        if p == 1 {
            // Sum/Avg/Max over a singleton group is the identity.
            return PendingCollective::ready(buf.to_vec(), tag);
        }
        let key = (group.clone(), self.next_seq(&group));
        let bytes = std::mem::size_of_val(buf);

        let mut slots = self.core.slots.lock().unwrap();
        let slot = slots.entry(key.clone()).or_default();
        // Stash contributions per rank; the last arriver reduces them in
        // rank order so results are bit-deterministic regardless of
        // thread scheduling (floating-point addition is not associative).
        slot.gather.insert(self.rank, buf.to_vec());
        slot.arrived += 1;
        if slot.arrived == p {
            // The last arriver reduces the stashed contributions in rank
            // order (see `reduce_rank_order`).
            let mut result = reduce_rank_order(&slot.gather, op);
            if op == ReduceOp::Avg {
                let inv = 1.0 / p as f32;
                for v in result.iter_mut() {
                    *v *= inv;
                }
            }
            slot.buf = Some(result);
            slot.gather.clear();
            slot.ready = true;
            self.core.meter.record(CommEvent {
                op: CommOp::Allreduce,
                bytes,
                group_size: p,
                seconds: self.core.cost.allreduce(bytes, p),
                tag,
            });
            self.core.cond.notify_all();
        }
        PendingCollective::in_flight(key, p, tag)
    }

    fn broadcast(&self, buf: &mut [f32], root: usize) {
        let group = self.world_group();
        self.broadcast_group(buf, root, &group);
    }

    fn broadcast_group(&self, buf: &mut [f32], root: usize, group: &[usize]) {
        let pending = self.begin_broadcast(buf, root, group, CommTag::Untagged);
        self.complete(pending, buf);
    }

    fn begin_broadcast(
        &self,
        buf: &[f32],
        root: usize,
        group: &[usize],
        tag: CommTag,
    ) -> PendingCollective {
        let group = self.normalize_group(group);
        assert!(group.contains(&root), "broadcast root {root} not in group {group:?}");
        let p = group.len();
        if p == 1 {
            return PendingCollective::noop(tag);
        }
        let key = (group.clone(), self.next_seq(&group));
        let bytes = std::mem::size_of_val(buf);

        if self.rank == root {
            let mut slots = self.core.slots.lock().unwrap();
            let slot = slots.entry(key.clone()).or_default();
            slot.buf = Some(buf.to_vec());
            slot.ready = true;
            slot.done += 1;
            let remove = slot.done == p;
            self.core.meter.record(CommEvent {
                op: CommOp::Broadcast,
                bytes,
                group_size: p,
                seconds: self.core.cost.broadcast(bytes, p),
                tag,
            });
            self.core.cond.notify_all();
            if remove {
                slots.remove(&key);
            }
            // The root's buffer already holds the payload.
            return PendingCollective::noop(tag);
        }
        PendingCollective::in_flight(key, p, tag)
    }

    fn complete(&self, pending: PendingCollective, buf: &mut [f32]) {
        let mut pending = pending;
        if let Some(payload) = pending.take_payload() {
            buf.copy_from_slice(&payload);
            return;
        }
        let Some(ticket) = pending.take_ticket() else {
            return; // No-op completion (broadcast root, singleton group).
        };
        let mut slots = self.core.slots.lock().unwrap();
        loop {
            {
                // `entry` rather than `get`: a broadcast receiver may reach
                // completion before the root has posted the slot.
                let slot = slots.entry(ticket.key.clone()).or_default();
                if slot.ready {
                    let full = slot.buf.as_ref().expect("result present");
                    match &ticket.shard {
                        // Reduce-scatter: copy only this rank's owned ranges,
                        // concatenated.
                        Some(ranges) => {
                            let mut off = 0;
                            for &(start, len) in ranges {
                                buf[off..off + len].copy_from_slice(&full[start..start + len]);
                                off += len;
                            }
                            debug_assert_eq!(off, buf.len(), "buffer sized to owned shards");
                        }
                        None => buf.copy_from_slice(full),
                    }
                    slot.done += 1;
                    if slot.done == ticket.participants {
                        slots.remove(&ticket.key);
                    }
                    return;
                }
            }
            slots = self.core.cond.wait(slots).unwrap();
        }
    }

    fn poll_ready(&self, pending: &PendingCollective) -> bool {
        if pending.is_eager() {
            return true;
        }
        let ticket = pending.ticket().expect("non-eager handle carries a ticket");
        // Slot absent ⇒ not ready: a slot cannot be retired before *this*
        // rank contributes its `done` in `complete`, so absence here means
        // no participant has begun the collective yet (a broadcast receiver
        // polling before the root posts).
        let slots = self.core.slots.lock().unwrap();
        slots.get(&ticket.key).is_some_and(|slot| slot.ready)
    }

    fn allgather(&self, send: &[f32]) -> Vec<f32> {
        let group = self.world_group();
        let p = group.len();
        if p == 1 {
            return send.to_vec();
        }
        let key = (group.clone(), self.next_seq(&group));
        let bytes = std::mem::size_of_val(send);

        let mut slots = self.core.slots.lock().unwrap();
        {
            let slot = slots.entry(key.clone()).or_default();
            slot.gather.insert(self.rank, send.to_vec());
            slot.arrived += 1;
            if slot.arrived == p {
                slot.ready = true;
                self.core.meter.record(CommEvent {
                    op: CommOp::Allgather,
                    bytes,
                    group_size: p,
                    seconds: self.core.cost.allgather(bytes, p),
                    tag: CommTag::Untagged,
                });
                self.core.cond.notify_all();
            }
        }
        loop {
            {
                let slot = slots.get_mut(&key).expect("slot vanished before completion");
                if slot.ready {
                    let mut out = Vec::new();
                    for (_, part) in slot.gather.iter() {
                        out.extend_from_slice(part);
                    }
                    slot.done += 1;
                    if slot.done == p {
                        slots.remove(&key);
                    }
                    return out;
                }
            }
            slots = self.core.cond.wait(slots).unwrap();
        }
    }

    fn reduce_scatter(&self, send: &[f32]) -> Vec<f32> {
        let group = self.world_group();
        let p = group.len();
        // Pad-and-trim shard boundaries: with chunk = ⌈len / p⌉, rank k owns
        // result[k·chunk .. min((k+1)·chunk, len)] — trailing ranks may
        // receive short or empty chunks when the length does not divide.
        let chunk = send.len().div_ceil(p);
        let shards: Vec<ShardSpec> = group
            .iter()
            .map(|&k| {
                let start = (k * chunk).min(send.len());
                ShardSpec { owner: k, start, len: chunk.min(send.len() - start) }
            })
            .collect();
        let mut out = vec![0.0f32; shards[self.rank].len];
        let pending =
            self.begin_reduce_scatter(send, ReduceOp::Sum, &group, &shards, CommTag::Untagged);
        self.complete(pending, &mut out);
        out
    }

    fn begin_reduce_scatter(
        &self,
        buf: &[f32],
        op: ReduceOp,
        group: &[usize],
        shards: &[ShardSpec],
        tag: CommTag,
    ) -> PendingCollective {
        let group = self.normalize_group(group);
        let p = group.len();
        // Validate the shard tiling on this rank's view; every member must
        // pass an identical spec (same contract as matching collectives).
        let mut end = 0usize;
        for s in shards {
            assert_eq!(s.start, end, "shards must tile the payload contiguously");
            assert!(group.contains(&s.owner), "shard owner {} not in group {group:?}", s.owner);
            end += s.len;
        }
        assert_eq!(end, buf.len(), "shards must cover the whole payload");
        let ranges: Vec<(usize, usize)> =
            shards.iter().filter(|s| s.owner == self.rank).map(|s| (s.start, s.len)).collect();
        if p == 1 {
            let owned: Vec<f32> = ranges
                .iter()
                .flat_map(|&(start, len)| buf[start..start + len].iter().copied())
                .collect();
            return PendingCollective::ready(owned, tag);
        }
        let key = (group.clone(), self.next_seq(&group));
        let bytes = std::mem::size_of_val(buf);

        let mut slots = self.core.slots.lock().unwrap();
        let slot = slots.entry(key.clone()).or_default();
        slot.gather.insert(self.rank, buf.to_vec());
        slot.arrived += 1;
        if slot.arrived == p {
            // Reduce-then-slice over the rendezvous core: the same rank-order
            // reduction as allreduce, so each shard is bitwise the same slice
            // an allreduce would produce. The meter charges the ring
            // reduce-scatter model — half a ring allreduce — once per
            // collective, not per rank.
            let mut result = reduce_rank_order(&slot.gather, op);
            if op == ReduceOp::Avg {
                let inv = 1.0 / p as f32;
                for v in result.iter_mut() {
                    *v *= inv;
                }
            }
            slot.buf = Some(result);
            slot.gather.clear();
            slot.ready = true;
            self.core.meter.record(CommEvent {
                op: CommOp::ReduceScatter,
                bytes: bytes / 2,
                group_size: p,
                seconds: self.core.cost.reduce_scatter(bytes, p),
                tag,
            });
            self.core.cond.notify_all();
        }
        PendingCollective::in_flight_sharded(key, p, tag, ranges)
    }

    fn begin_allgather(&self, buf: &[f32], group: &[usize], tag: CommTag) -> PendingCollective {
        let group = self.normalize_group(group);
        let p = group.len();
        if p == 1 {
            return PendingCollective::ready(buf.to_vec(), tag);
        }
        let key = (group.clone(), self.next_seq(&group));
        let mut slots = self.core.slots.lock().unwrap();
        let slot = slots.entry(key.clone()).or_default();
        slot.gather.insert(self.rank, buf.to_vec());
        slot.arrived += 1;
        if slot.arrived == p {
            // Concatenate contributions in group rank order (BTreeMap keys
            // ascend). Contribution lengths may differ per member.
            let mut out = Vec::new();
            for part in slot.gather.values() {
                out.extend_from_slice(part);
            }
            let total_bytes = std::mem::size_of::<f32>() * out.len();
            slot.buf = Some(out);
            slot.gather.clear();
            slot.ready = true;
            self.core.meter.record(CommEvent {
                op: CommOp::Allgather,
                // The gather half of a ring allreduce (see CommEvent::bytes).
                bytes: total_bytes / 2,
                group_size: p,
                seconds: self.core.cost.allgather(total_bytes.div_ceil(p), p),
                tag,
            });
            self.core.cond.notify_all();
        }
        PendingCollective::in_flight(key, p, tag)
    }

    fn barrier(&self) {
        let group = self.world_group();
        let p = group.len();
        if p == 1 {
            return;
        }
        let key = (group.clone(), self.next_seq(&group));
        let mut slots = self.core.slots.lock().unwrap();
        {
            let slot = slots.entry(key.clone()).or_default();
            slot.arrived += 1;
            if slot.arrived == p {
                slot.ready = true;
                self.core.meter.record(CommEvent {
                    op: CommOp::Barrier,
                    bytes: 0,
                    group_size: p,
                    seconds: self.core.cost.barrier(p),
                    tag: CommTag::Untagged,
                });
                self.core.cond.notify_all();
            }
        }
        loop {
            {
                let slot = slots.get_mut(&key).expect("slot vanished before completion");
                if slot.ready {
                    slot.done += 1;
                    if slot.done == p {
                        slots.remove(&key);
                    }
                    return;
                }
            }
            slots = self.core.cond.wait(slots).unwrap();
        }
    }

    fn meter_snapshot(&self) -> MeterSnapshot {
        self.core.meter.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_sum_all_ranks() {
        let results = ThreadComm::run(4, |comm| {
            let mut buf = vec![(comm.rank() + 1) as f32; 3];
            comm.allreduce(&mut buf, ReduceOp::Sum);
            buf
        });
        for r in results {
            assert_eq!(r, vec![10.0; 3]); // 1+2+3+4
        }
    }

    #[test]
    fn allreduce_avg() {
        let results = ThreadComm::run(5, |comm| {
            let mut buf = vec![comm.rank() as f32];
            comm.allreduce(&mut buf, ReduceOp::Avg);
            buf[0]
        });
        for r in results {
            assert!((r - 2.0).abs() < 1e-6); // (0+1+2+3+4)/5
        }
    }

    #[test]
    fn allreduce_max() {
        let results = ThreadComm::run(3, |comm| {
            let mut buf = vec![-(comm.rank() as f32), comm.rank() as f32];
            comm.allreduce(&mut buf, ReduceOp::Max);
            buf
        });
        for r in results {
            assert_eq!(r, vec![0.0, 2.0]);
        }
    }

    #[test]
    fn broadcast_from_each_root() {
        for root in 0..3 {
            let results = ThreadComm::run(3, move |comm| {
                let mut buf =
                    if comm.rank() == root { vec![42.0, root as f32] } else { vec![0.0, 0.0] };
                comm.broadcast(&mut buf, root);
                buf
            });
            for r in results {
                assert_eq!(r, vec![42.0, root as f32]);
            }
        }
    }

    #[test]
    fn broadcast_disjoint_groups_concurrently() {
        // The HYBRID-OPT pattern: two disjoint broadcast groups running
        // simultaneously must not interfere.
        let results = ThreadComm::run(4, |comm| {
            let (group, root, value) = if comm.rank() < 2 {
                (vec![0usize, 1], 0usize, 7.0f32)
            } else {
                (vec![2usize, 3], 3usize, 9.0f32)
            };
            let mut buf = if comm.rank() == root { vec![value] } else { vec![0.0] };
            comm.broadcast_group(&mut buf, root, &group);
            buf[0]
        });
        assert_eq!(results, vec![7.0, 7.0, 9.0, 9.0]);
    }

    #[test]
    fn allreduce_subgroup() {
        let results = ThreadComm::run(4, |comm| {
            if comm.rank() % 2 == 0 {
                let mut buf = vec![comm.rank() as f32];
                comm.allreduce_group(&mut buf, ReduceOp::Sum, &[0, 2]);
                Some(buf[0])
            } else {
                None
            }
        });
        assert_eq!(results[0], Some(2.0));
        assert_eq!(results[2], Some(2.0));
    }

    #[test]
    fn allgather_rank_order() {
        let results = ThreadComm::run(3, |comm| comm.allgather(&[comm.rank() as f32 * 10.0, 1.0]));
        for r in results {
            assert_eq!(r, vec![0.0, 1.0, 10.0, 1.0, 20.0, 1.0]);
        }
    }

    #[test]
    fn repeated_collectives_in_order() {
        // Back-to-back collectives on the same group must match pairwise.
        let results = ThreadComm::run(4, |comm| {
            let mut out = Vec::new();
            for round in 0..10 {
                let mut buf = vec![(comm.rank() + round) as f32];
                comm.allreduce(&mut buf, ReduceOp::Sum);
                out.push(buf[0]);
            }
            out
        });
        for r in &results {
            for (round, &v) in r.iter().enumerate() {
                assert_eq!(v, (6 + 4 * round) as f32);
            }
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        ThreadComm::run(8, |comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier, every rank's increment must be visible.
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn meter_counts_collectives() {
        let comms = ThreadComm::world(2);
        std::thread::scope(|s| {
            for comm in &comms {
                s.spawn(move || {
                    let mut buf = vec![1.0f32; 16];
                    comm.allreduce(&mut buf, ReduceOp::Sum);
                    comm.broadcast(&mut buf, 0);
                });
            }
        });
        let snap = comms[0].meter_snapshot();
        assert_eq!(snap.calls(CommOp::Allreduce), 1);
        assert_eq!(snap.calls(CommOp::Broadcast), 1);
        assert_eq!(snap.bytes(CommOp::Allreduce), 64);
        assert!(snap.simulated_seconds > 0.0);
    }

    #[test]
    fn world_of_one_is_noop() {
        let results = ThreadComm::run(1, |comm| {
            let mut buf = vec![5.0f32];
            comm.allreduce(&mut buf, ReduceOp::Sum);
            comm.broadcast(&mut buf, 0);
            comm.barrier();
            let g = comm.allgather(&buf);
            (buf[0], g)
        });
        assert_eq!(results[0], (5.0, vec![5.0]));
    }

    #[test]
    fn many_ranks_stress() {
        let n = 16;
        let results = ThreadComm::run(n, |comm| {
            let mut acc = 0.0f32;
            for _ in 0..50 {
                let mut buf = vec![1.0f32; 4];
                comm.allreduce(&mut buf, ReduceOp::Sum);
                acc += buf[0];
            }
            acc
        });
        for r in results {
            assert_eq!(r, 50.0 * n as f32);
        }
    }
}

#[cfg(test)]
mod pending_tests {
    use super::*;

    #[test]
    fn begin_allreduce_overlaps_local_work() {
        let results = ThreadComm::run(4, |comm| {
            let contribution = vec![(comm.rank() + 1) as f32; 8];
            let pending = comm.begin_allreduce(
                &contribution,
                ReduceOp::Sum,
                &[0, 1, 2, 3],
                CommTag::FactorComm,
            );
            // Local "compute" overlapped with the in-flight collective.
            let local: f32 = (0..100).map(|i| i as f32).sum();
            let mut out = vec![0.0f32; 8];
            comm.complete(pending, &mut out);
            (local, out)
        });
        for (local, out) in results {
            assert_eq!(local, 4950.0);
            assert_eq!(out, vec![10.0; 8]);
        }
    }

    #[test]
    fn begin_broadcast_root_is_immediate() {
        let results = ThreadComm::run(3, |comm| {
            let mut buf = if comm.rank() == 1 { vec![3.0f32, 4.0] } else { vec![0.0f32; 2] };
            let pending = comm.begin_broadcast(&buf, 1, &[0, 1, 2], CommTag::EigComm);
            comm.complete(pending, &mut buf);
            buf
        });
        for r in results {
            assert_eq!(r, vec![3.0, 4.0]);
        }
    }

    #[test]
    fn split_and_blocking_forms_match_bitwise() {
        // Awkward float values whose sum depends on association order; the
        // split path must reduce in exactly the same order as blocking.
        let blocking = ThreadComm::run(4, |comm| {
            let mut buf: Vec<f32> =
                (0..16).map(|i| 0.1 + comm.rank() as f32 * 1e-7 + i as f32 * 0.3).collect();
            comm.allreduce(&mut buf, ReduceOp::Avg);
            buf
        });
        let split = ThreadComm::run(4, |comm| {
            let contribution: Vec<f32> =
                (0..16).map(|i| 0.1 + comm.rank() as f32 * 1e-7 + i as f32 * 0.3).collect();
            let pending = comm.begin_allreduce(
                &contribution,
                ReduceOp::Avg,
                &[0, 1, 2, 3],
                CommTag::Untagged,
            );
            let mut out = vec![0.0f32; 16];
            comm.complete(pending, &mut out);
            out
        });
        for (b, s) in blocking.iter().zip(&split) {
            assert_eq!(
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                s.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn multiple_in_flight_collectives_complete_out_of_order() {
        // Begin several collectives on different groups, then complete them
        // in reverse order — the per-group sequence numbers keep matching
        // correct.
        let results = ThreadComm::run(4, |comm| {
            let mine = vec![comm.rank() as f32 + 1.0; 4];
            let p_world =
                comm.begin_allreduce(&mine, ReduceOp::Sum, &[0, 1, 2, 3], CommTag::FactorComm);
            let pair = if comm.rank() < 2 { vec![0usize, 1] } else { vec![2usize, 3] };
            let p_pair = comm.begin_allreduce(&mine, ReduceOp::Sum, &pair, CommTag::GradComm);
            let mut pair_out = vec![0.0f32; 4];
            let mut world_out = vec![0.0f32; 4];
            comm.complete(p_pair, &mut pair_out);
            comm.complete(p_world, &mut world_out);
            (pair_out[0], world_out[0])
        });
        assert_eq!(results, vec![(3.0, 10.0), (3.0, 10.0), (7.0, 10.0), (7.0, 10.0)]);
    }

    #[test]
    fn poll_ready_reflects_rendezvous_state() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let begun = AtomicUsize::new(0);
        ThreadComm::run(2, |comm| {
            let buf = vec![comm.rank() as f32; 4];
            if comm.rank() == 0 {
                let pending =
                    comm.begin_allreduce(&buf, ReduceOp::Sum, &[0, 1], CommTag::FactorComm);
                // Only rank 0 has begun: the collective cannot be ready.
                assert!(!comm.poll_ready(&pending));
                begun.store(1, Ordering::SeqCst);
                // Wait (outside the rendezvous) for rank 1 to contribute,
                // then the poll must flip to ready without completing.
                while begun.load(Ordering::SeqCst) != 2 {
                    std::thread::yield_now();
                }
                assert!(comm.poll_ready(&pending));
                let mut out = vec![0.0f32; 4];
                comm.complete(pending, &mut out);
                assert_eq!(out, vec![1.0; 4]);
            } else {
                while begun.load(Ordering::SeqCst) != 1 {
                    std::thread::yield_now();
                }
                let pending =
                    comm.begin_allreduce(&buf, ReduceOp::Sum, &[0, 1], CommTag::FactorComm);
                // Both contributions are in: ready on the late arriver too.
                assert!(comm.poll_ready(&pending));
                begun.store(2, Ordering::SeqCst);
                let mut out = vec![0.0f32; 4];
                comm.complete(pending, &mut out);
                assert_eq!(out, vec![1.0; 4]);
            }
        });
    }

    #[test]
    fn poll_ready_eager_handles_are_always_ready() {
        ThreadComm::run(1, |comm| {
            let pending = comm.begin_allreduce(&[1.0], ReduceOp::Sum, &[0], CommTag::Untagged);
            assert!(comm.poll_ready(&pending));
            let mut out = vec![0.0f32];
            comm.complete(pending, &mut out);
            let noop = PendingCollective::noop(CommTag::Untagged);
            assert!(comm.poll_ready(&noop));
            comm.complete(noop, &mut []);
        });
    }

    #[test]
    fn poll_ready_broadcast_receiver_waits_for_root() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let stage = AtomicUsize::new(0);
        ThreadComm::run(2, |comm| {
            if comm.rank() == 1 {
                // Receiver begins first: slot not yet posted by the root.
                let pending = comm.begin_broadcast(&[0.0, 0.0], 0, &[0, 1], CommTag::EigComm);
                assert!(!comm.poll_ready(&pending));
                stage.store(1, Ordering::SeqCst);
                while stage.load(Ordering::SeqCst) != 2 {
                    std::thread::yield_now();
                }
                assert!(comm.poll_ready(&pending));
                let mut out = vec![0.0f32; 2];
                comm.complete(pending, &mut out);
                assert_eq!(out, vec![5.0, 6.0]);
            } else {
                while stage.load(Ordering::SeqCst) != 1 {
                    std::thread::yield_now();
                }
                let pending = comm.begin_broadcast(&[5.0, 6.0], 0, &[0, 1], CommTag::EigComm);
                stage.store(2, Ordering::SeqCst);
                comm.complete(pending, &mut [5.0, 6.0]);
            }
        });
    }

    #[test]
    fn meter_attributes_bytes_to_tags() {
        let comms = ThreadComm::world(2);
        std::thread::scope(|s| {
            for comm in &comms {
                s.spawn(move || {
                    let buf = vec![1.0f32; 16]; // 64 bytes
                    let p = comm.begin_allreduce(&buf, ReduceOp::Sum, &[0, 1], CommTag::FactorComm);
                    let mut out = vec![0.0f32; 16];
                    comm.complete(p, &mut out);
                    let p = comm.begin_broadcast(&out, 0, &[0, 1], CommTag::GradComm);
                    comm.complete(p, &mut out);
                });
            }
        });
        let snap = comms[0].meter_snapshot();
        assert_eq!(snap.tag_bytes(CommTag::FactorComm), 64);
        assert_eq!(snap.tag_bytes(CommTag::GradComm), 64);
        assert_eq!(snap.tag_bytes(CommTag::EigComm), 0);
        assert_eq!(snap.tag_calls(CommTag::FactorComm), 1);
    }
}

#[cfg(test)]
mod reduce_scatter_tests {
    use super::*;

    #[test]
    fn reduce_scatter_sums_and_slices() {
        let results = ThreadComm::run(4, |comm| {
            // Each rank contributes [rank, rank, ..] over 4 chunks of 2.
            let send = vec![comm.rank() as f32; 8];
            comm.reduce_scatter(&send)
        });
        // Sum over ranks = 0+1+2+3 = 6 everywhere; each rank gets its chunk.
        for (rank, out) in results.iter().enumerate() {
            assert_eq!(out, &vec![6.0; 2], "rank {rank}");
        }
    }

    #[test]
    fn reduce_scatter_distinct_chunks() {
        let results = ThreadComm::run(2, |comm| {
            // Rank r sends [r*10, r*10+1, r*10+2, r*10+3].
            let send: Vec<f32> = (0..4).map(|i| (comm.rank() * 10 + i) as f32).collect();
            comm.reduce_scatter(&send)
        });
        // Sums: [10, 12, 14, 16]; rank 0 gets [10, 12], rank 1 [14, 16].
        assert_eq!(results[0], vec![10.0, 12.0]);
        assert_eq!(results[1], vec![14.0, 16.0]);
    }

    #[test]
    fn reduce_scatter_world_one() {
        let results = ThreadComm::run(1, |comm| comm.reduce_scatter(&[1.0, 2.0]));
        assert_eq!(results[0], vec![1.0, 2.0]);
    }

    #[test]
    fn reduce_scatter_pads_and_trims_non_divisible_lengths() {
        // 7 elements over 3 ranks: chunk = ⌈7/3⌉ = 3, so the split is
        // [0..3), [3..6), [6..7).
        let results = ThreadComm::run(3, |comm| {
            let send: Vec<f32> = (0..7).map(|i| (comm.rank() + i) as f32).collect();
            comm.reduce_scatter(&send)
        });
        // Sum over ranks of (r + i) = 3i + 3.
        assert_eq!(results[0], vec![3.0, 6.0, 9.0]);
        assert_eq!(results[1], vec![12.0, 15.0, 18.0]);
        assert_eq!(results[2], vec![21.0]);
    }

    #[test]
    fn reduce_scatter_trailing_rank_can_own_nothing() {
        // 2 elements over 4 ranks: chunk = 1; ranks 2 and 3 own nothing.
        let results = ThreadComm::run(4, |comm| comm.reduce_scatter(&[1.0, 2.0]));
        assert_eq!(results[0], vec![4.0]);
        assert_eq!(results[1], vec![8.0]);
        assert_eq!(results[2], Vec::<f32>::new());
        assert_eq!(results[3], Vec::<f32>::new());
    }

    #[test]
    fn begin_reduce_scatter_matches_allreduce_slice_bitwise() {
        // Awkward floats whose sum depends on association order: a shard of
        // the reduce-scatter must be bit-identical to the same slice of an
        // allreduce over the same group.
        let mk = |rank: usize| -> Vec<f32> {
            (0..12).map(|i| 0.1 + rank as f32 * 1e-7 + i as f32 * 0.3).collect()
        };
        let reference = ThreadComm::run(4, |comm| {
            let mut buf = mk(comm.rank());
            comm.allreduce(&mut buf, ReduceOp::Avg);
            buf
        });
        let sharded = ThreadComm::run(4, |comm| {
            let buf = mk(comm.rank());
            // Uneven, multi-shard ownership: rank 1 owns two shards.
            let shards = [
                ShardSpec { owner: 1, start: 0, len: 5 },
                ShardSpec { owner: 0, start: 5, len: 2 },
                ShardSpec { owner: 1, start: 7, len: 1 },
                ShardSpec { owner: 3, start: 8, len: 4 },
            ];
            let pending = comm.begin_reduce_scatter(
                &buf,
                ReduceOp::Avg,
                &[0, 1, 2, 3],
                &shards,
                CommTag::FactorReduce,
            );
            let owned: usize =
                shards.iter().filter(|s| s.owner == comm.rank()).map(|s| s.len).sum();
            let mut out = vec![0.0f32; owned];
            comm.complete(pending, &mut out);
            out
        });
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&sharded[0]), bits(&reference[0][5..7]));
        let rank1: Vec<f32> =
            reference[1][0..5].iter().chain(&reference[1][7..8]).copied().collect();
        assert_eq!(bits(&sharded[1]), bits(&rank1));
        assert_eq!(sharded[2], Vec::<f32>::new());
        assert_eq!(bits(&sharded[3]), bits(&reference[3][8..12]));
    }

    #[test]
    fn begin_allgather_concatenates_variable_lengths_in_rank_order() {
        let results = ThreadComm::run(3, |comm| {
            // Rank r contributes r+1 copies of r·10, but only ranks 0 and 2
            // participate in the group.
            if comm.rank() == 1 {
                return Vec::new();
            }
            let send = vec![comm.rank() as f32 * 10.0; comm.rank() + 1];
            let pending = comm.begin_allgather(&send, &[0, 2], CommTag::FactorGather);
            let mut out = vec![0.0f32; 4];
            comm.complete(pending, &mut out);
            out
        });
        assert_eq!(results[0], vec![0.0, 20.0, 20.0, 20.0]);
        assert_eq!(results[2], vec![0.0, 20.0, 20.0, 20.0]);
    }

    #[test]
    fn meter_counts_reduce_scatter_once_with_half_volume() {
        let comms = ThreadComm::world(4);
        std::thread::scope(|s| {
            for comm in &comms {
                s.spawn(move || {
                    let send = vec![1.0f32; 16]; // 64 bytes
                    let _ = comm.reduce_scatter(&send);
                });
            }
        });
        let snap = comms[0].meter_snapshot();
        // One event for the whole collective (not one per rank), charged the
        // reduce half of a ring allreduce: 64/2 = 32 bytes.
        assert_eq!(snap.calls(CommOp::ReduceScatter), 1);
        assert_eq!(snap.bytes(CommOp::ReduceScatter), 32);
        assert_eq!(snap.calls(CommOp::Allreduce), 0);
    }
}
