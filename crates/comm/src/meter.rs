//! Traffic metering for collectives.
//!
//! Each communicator owns a meter that records, per collective type, the
//! number of invocations, total payload bytes, and the simulated seconds the
//! α–β cost model assigns. Every event also carries a [`CommTag`] naming the
//! pipeline stage that issued it, so the figure harness can break iteration
//! time and byte volume into the stages of Figure 7 of the paper.

use std::sync::atomic::{AtomicU64, Ordering};

/// Collective operation categories tracked by the meter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommOp {
    /// Full-world or group allreduce.
    Allreduce,
    /// Broadcast (world or group).
    Broadcast,
    /// Allgather.
    Allgather,
    /// Barrier.
    Barrier,
    /// Reduce-scatter (the reduce half of a ring allreduce).
    ReduceScatter,
}

impl CommOp {
    /// All tracked operation types, in display order.
    pub const ALL: [CommOp; 5] = [
        CommOp::Allreduce,
        CommOp::ReduceScatter,
        CommOp::Broadcast,
        CommOp::Allgather,
        CommOp::Barrier,
    ];

    /// Index into the meter's counter arrays.
    fn slot(self) -> usize {
        match self {
            CommOp::Allreduce => 0,
            CommOp::Broadcast => 1,
            CommOp::Allgather => 2,
            CommOp::Barrier => 3,
            CommOp::ReduceScatter => 4,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CommOp::Allreduce => "allreduce",
            CommOp::Broadcast => "broadcast",
            CommOp::Allgather => "allgather",
            CommOp::Barrier => "barrier",
            CommOp::ReduceScatter => "reduce_scatter",
        }
    }
}

/// K-FAC pipeline stage that issued a collective.
///
/// Attribution tag carried by [`CommEvent`] and by
/// [`crate::PendingCollective`], mapping metered traffic onto the comm
/// stages of the paper's Figure 7 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommTag {
    /// Kronecker-factor allreduce ("factor comm", dense path).
    FactorComm,
    /// Sharded factor reduce-scatter ("factor comm", sharded path).
    FactorReduce,
    /// Worker-group allgather rematerializing a sharded factor payload.
    FactorGather,
    /// Eigenbasis / inverse / outer-product broadcasts ("eig bcast").
    EigComm,
    /// Preconditioned-gradient broadcasts ("grad bcast").
    GradComm,
    /// Data-parallel gradient allreduce (outside the K-FAC step).
    Ddp,
    /// Anything else: barriers, tests, ad-hoc traffic.
    Untagged,
}

impl CommTag {
    /// All tags, in display order.
    pub const ALL: [CommTag; 7] = [
        CommTag::FactorComm,
        CommTag::FactorReduce,
        CommTag::FactorGather,
        CommTag::EigComm,
        CommTag::GradComm,
        CommTag::Ddp,
        CommTag::Untagged,
    ];

    /// Index into the meter's per-tag counter arrays.
    fn slot(self) -> usize {
        match self {
            CommTag::FactorComm => 0,
            CommTag::EigComm => 1,
            CommTag::GradComm => 2,
            CommTag::Ddp => 3,
            CommTag::Untagged => 4,
            CommTag::FactorReduce => 5,
            CommTag::FactorGather => 6,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CommTag::FactorComm => "factor_comm",
            CommTag::FactorReduce => "factor_reduce",
            CommTag::FactorGather => "factor_gather",
            CommTag::EigComm => "eig_comm",
            CommTag::GradComm => "grad_comm",
            CommTag::Ddp => "ddp",
            CommTag::Untagged => "untagged",
        }
    }
}

/// A single metered collective invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommEvent {
    /// Which collective ran.
    pub op: CommOp,
    /// Logical payload bytes, charged **once per collective** (the meter is
    /// world-shared). Conventions: allreduce and broadcast charge the result
    /// payload `n`; allgather charges one rank's contribution; a
    /// reduce-scatter charges `n/2` and a worker-group allgather of a sharded
    /// payload charges `total/2`, because a ring allreduce *is*
    /// reduce-scatter + allgather — each half runs half the allreduce's
    /// volume, and charging either half the full `n` would double-count the
    /// phase that never executes.
    pub bytes: usize,
    /// Size of the participating group.
    pub group_size: usize,
    /// Simulated seconds charged by the cost model.
    pub seconds: f64,
    /// Pipeline stage that issued the collective.
    pub tag: CommTag,
}

const N_OPS: usize = 5;
const N_TAGS: usize = 7;

/// Lock-free accumulation of communication statistics.
///
/// Seconds are stored as nanoseconds in a `u64` so the whole meter stays
/// atomic (guide: prefer fetch-add counters over a mutex for statistics).
#[derive(Debug, Default)]
pub struct Meter {
    calls: [AtomicU64; N_OPS],
    bytes: [AtomicU64; N_OPS],
    nanos: [AtomicU64; N_OPS],
    tag_calls: [AtomicU64; N_TAGS],
    tag_bytes: [AtomicU64; N_TAGS],
    tag_nanos: [AtomicU64; N_TAGS],
}

impl Meter {
    /// New meter with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one collective invocation.
    pub fn record(&self, event: CommEvent) {
        let s = event.op.slot();
        self.calls[s].fetch_add(1, Ordering::Relaxed);
        self.bytes[s].fetch_add(event.bytes as u64, Ordering::Relaxed);
        self.nanos[s].fetch_add((event.seconds * 1e9) as u64, Ordering::Relaxed);
        let t = event.tag.slot();
        self.tag_calls[t].fetch_add(1, Ordering::Relaxed);
        self.tag_bytes[t].fetch_add(event.bytes as u64, Ordering::Relaxed);
        self.tag_nanos[t].fetch_add((event.seconds * 1e9) as u64, Ordering::Relaxed);
    }

    /// Consistent-enough snapshot for reporting (counters are monotone).
    pub fn snapshot(&self) -> MeterSnapshot {
        let mut snap = MeterSnapshot::default();
        for op in CommOp::ALL {
            let s = op.slot();
            snap.calls[s] = self.calls[s].load(Ordering::Relaxed);
            snap.bytes[s] = self.bytes[s].load(Ordering::Relaxed);
            snap.seconds[s] = self.nanos[s].load(Ordering::Relaxed) as f64 * 1e-9;
        }
        for tag in CommTag::ALL {
            let t = tag.slot();
            snap.tag_calls[t] = self.tag_calls[t].load(Ordering::Relaxed);
            snap.tag_bytes[t] = self.tag_bytes[t].load(Ordering::Relaxed);
            snap.tag_seconds[t] = self.tag_nanos[t].load(Ordering::Relaxed) as f64 * 1e-9;
        }
        snap.simulated_seconds = snap.seconds.iter().sum();
        snap
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        for s in 0..N_OPS {
            self.calls[s].store(0, Ordering::Relaxed);
            self.bytes[s].store(0, Ordering::Relaxed);
            self.nanos[s].store(0, Ordering::Relaxed);
        }
        for t in 0..N_TAGS {
            self.tag_calls[t].store(0, Ordering::Relaxed);
            self.tag_bytes[t].store(0, Ordering::Relaxed);
            self.tag_nanos[t].store(0, Ordering::Relaxed);
        }
    }
}

/// Point-in-time copy of a [`Meter`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MeterSnapshot {
    calls: [u64; N_OPS],
    bytes: [u64; N_OPS],
    seconds: [f64; N_OPS],
    tag_calls: [u64; N_TAGS],
    tag_bytes: [u64; N_TAGS],
    tag_seconds: [f64; N_TAGS],
    /// Total simulated communication seconds across all collectives.
    pub simulated_seconds: f64,
}

impl MeterSnapshot {
    /// Invocation count for one collective type.
    pub fn calls(&self, op: CommOp) -> u64 {
        self.calls[op.slot()]
    }

    /// Payload bytes for one collective type.
    pub fn bytes(&self, op: CommOp) -> u64 {
        self.bytes[op.slot()]
    }

    /// Simulated seconds for one collective type.
    pub fn seconds(&self, op: CommOp) -> f64 {
        self.seconds[op.slot()]
    }

    /// Invocation count attributed to one pipeline stage.
    pub fn tag_calls(&self, tag: CommTag) -> u64 {
        self.tag_calls[tag.slot()]
    }

    /// Payload bytes attributed to one pipeline stage.
    pub fn tag_bytes(&self, tag: CommTag) -> u64 {
        self.tag_bytes[tag.slot()]
    }

    /// Simulated seconds attributed to one pipeline stage.
    pub fn tag_seconds(&self, tag: CommTag) -> f64 {
        self.tag_seconds[tag.slot()]
    }

    /// Total payload bytes across all collectives.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Difference `self - earlier`, elementwise (for measuring a window).
    pub fn delta_since(&self, earlier: &MeterSnapshot) -> MeterSnapshot {
        let mut out = MeterSnapshot::default();
        for s in 0..N_OPS {
            out.calls[s] = self.calls[s].saturating_sub(earlier.calls[s]);
            out.bytes[s] = self.bytes[s].saturating_sub(earlier.bytes[s]);
            out.seconds[s] = (self.seconds[s] - earlier.seconds[s]).max(0.0);
        }
        for t in 0..N_TAGS {
            out.tag_calls[t] = self.tag_calls[t].saturating_sub(earlier.tag_calls[t]);
            out.tag_bytes[t] = self.tag_bytes[t].saturating_sub(earlier.tag_bytes[t]);
            out.tag_seconds[t] = (self.tag_seconds[t] - earlier.tag_seconds[t]).max(0.0);
        }
        out.simulated_seconds = out.seconds.iter().sum();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let m = Meter::new();
        m.record(CommEvent {
            op: CommOp::Allreduce,
            bytes: 100,
            group_size: 4,
            seconds: 0.5,
            tag: CommTag::FactorComm,
        });
        m.record(CommEvent {
            op: CommOp::Allreduce,
            bytes: 50,
            group_size: 4,
            seconds: 0.25,
            tag: CommTag::FactorComm,
        });
        m.record(CommEvent {
            op: CommOp::Broadcast,
            bytes: 10,
            group_size: 2,
            seconds: 0.1,
            tag: CommTag::EigComm,
        });
        let s = m.snapshot();
        assert_eq!(s.calls(CommOp::Allreduce), 2);
        assert_eq!(s.bytes(CommOp::Allreduce), 150);
        assert!((s.seconds(CommOp::Allreduce) - 0.75).abs() < 1e-6);
        assert_eq!(s.total_bytes(), 160);
        assert!((s.simulated_seconds - 0.85).abs() < 1e-6);
    }

    #[test]
    fn tags_partition_traffic() {
        let m = Meter::new();
        m.record(CommEvent {
            op: CommOp::Allreduce,
            bytes: 64,
            group_size: 4,
            seconds: 0.2,
            tag: CommTag::FactorComm,
        });
        m.record(CommEvent {
            op: CommOp::Broadcast,
            bytes: 32,
            group_size: 4,
            seconds: 0.1,
            tag: CommTag::GradComm,
        });
        m.record(CommEvent {
            op: CommOp::Broadcast,
            bytes: 16,
            group_size: 2,
            seconds: 0.05,
            tag: CommTag::EigComm,
        });
        let s = m.snapshot();
        assert_eq!(s.tag_bytes(CommTag::FactorComm), 64);
        assert_eq!(s.tag_bytes(CommTag::GradComm), 32);
        assert_eq!(s.tag_bytes(CommTag::EigComm), 16);
        assert_eq!(s.tag_bytes(CommTag::Untagged), 0);
        assert_eq!(s.tag_calls(CommTag::GradComm), 1);
        // Per-tag totals must equal per-op totals: every event has one tag.
        let tag_total: u64 = CommTag::ALL.iter().map(|&t| s.tag_bytes(t)).sum();
        assert_eq!(tag_total, s.total_bytes());
    }

    #[test]
    fn delta_between_snapshots() {
        let m = Meter::new();
        m.record(CommEvent {
            op: CommOp::Broadcast,
            bytes: 8,
            group_size: 2,
            seconds: 0.1,
            tag: CommTag::Untagged,
        });
        let before = m.snapshot();
        m.record(CommEvent {
            op: CommOp::Broadcast,
            bytes: 24,
            group_size: 2,
            seconds: 0.3,
            tag: CommTag::GradComm,
        });
        let after = m.snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.calls(CommOp::Broadcast), 1);
        assert_eq!(d.bytes(CommOp::Broadcast), 24);
        assert!((d.seconds(CommOp::Broadcast) - 0.3).abs() < 1e-6);
        assert_eq!(d.tag_bytes(CommTag::GradComm), 24);
        assert_eq!(d.tag_bytes(CommTag::Untagged), 0);
    }

    #[test]
    fn reduce_scatter_volume_counted_once() {
        // The shared meter records one event per collective; a reduce-scatter
        // of a 128-byte payload is charged 64 bytes (the reduce half of a
        // ring allreduce), not once per participating rank.
        let m = Meter::new();
        m.record(CommEvent {
            op: CommOp::ReduceScatter,
            bytes: 64,
            group_size: 8,
            seconds: 0.1,
            tag: CommTag::FactorReduce,
        });
        let s = m.snapshot();
        assert_eq!(s.calls(CommOp::ReduceScatter), 1);
        assert_eq!(s.bytes(CommOp::ReduceScatter), 64);
        assert_eq!(s.tag_bytes(CommTag::FactorReduce), 64);
        assert_eq!(s.tag_bytes(CommTag::FactorGather), 0);
        let tag_total: u64 = CommTag::ALL.iter().map(|&t| s.tag_bytes(t)).sum();
        assert_eq!(tag_total, s.total_bytes());
    }

    #[test]
    fn reset_zeroes() {
        let m = Meter::new();
        m.record(CommEvent {
            op: CommOp::Barrier,
            bytes: 0,
            group_size: 8,
            seconds: 0.0,
            tag: CommTag::Untagged,
        });
        m.reset();
        assert_eq!(m.snapshot().calls(CommOp::Barrier), 0);
        assert_eq!(m.snapshot().tag_calls(CommTag::Untagged), 0);
    }
}
