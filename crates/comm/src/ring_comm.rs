//! Lock-free ring engine for [`crate::ThreadComm`]: collectives built on
//! one SPSC ring per ordered rank pair.
//!
//! ## Topology
//!
//! Every collective on a group `g` elects the *leader* — the lowest member
//! rank. Members push their contribution into their `member→leader` ring at
//! `begin_*` time (never blocking except on ring backpressure); the leader
//! stashes its own contribution locally. At completion the leader drains
//! its rings, reduces the contributions **in ascending rank order** (the
//! same `reduce_rank_order` the mutex backend uses, so results are bitwise
//! identical across backends and thread schedules), meters the collective
//! once, and pushes each member exactly the slice it is owed — the full
//! result for allreduce, the member's owned shard concatenation for
//! reduce-scatter, the rank-ordered concatenation for allgather, an empty
//! ack for barrier. Broadcast skips the leader: the root pushes its payload
//! straight to every member at begin time, exactly like the mutex backend
//! posts the rendezvous slot eagerly.
//!
//! ## Matching
//!
//! Messages carry `(GroupId, seq)`; both come from the shared group
//! interner and the per-handle matching-order counters, so every rank
//! labels the same collective with the same key. Rings are FIFO per pair,
//! but collectives on *different* groups may interleave, so consumers drain
//! greedily into a stash keyed `(gid, seq, src)` and matching pops from the
//! stash. Greedy draining is also what keeps rings short: any rank that
//! waits for anything first empties everything addressed to it.
//!
//! ## Waiting
//!
//! Waits escalate: a bounded [`std::hint::spin_loop`] burst (shrunk
//! drastically when the world is oversubscribed — more ranks than cores —
//! so CI machines don't burn their only core spinning), then
//! [`std::thread::yield_now`], then a timed sleep on the world-shared
//! doorbell condvar. Producers ring the doorbell only when the sleeper
//! count says somebody is actually asleep, so the common push is one fence
//! and one atomic load past the ring write, and one `notify_all` releases
//! every sleeper at once. The lock-free data path never touches the
//! doorbell mutex; it exists purely as the cold-path sleep mechanism.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::group::GroupId;
use crate::meter::{CommEvent, CommOp, CommTag, Meter};
use crate::spsc::{self, CachePadded, Consumer, Producer};
use crate::{CollectiveCostModel, ReduceOp};

/// One payload in flight on a rank-pair ring. Payloads are `Arc`-shared so
/// a leader distributing one result to `p − 1` members clones a refcount,
/// not the buffer — the mutex backend's shared-slot read, without the lock.
#[derive(Debug)]
struct Message {
    gid: GroupId,
    seq: u64,
    data: Arc<[f32]>,
}

/// What a rank still owes / is owed for one in-flight collective.
#[derive(Debug)]
pub(crate) enum Role {
    /// Lowest group member: collects every contribution, reduces in rank
    /// order, meters, and distributes the results.
    Leader { kind: OpKind, own: Arc<[f32]>, members: Arc<[usize]>, tag: CommTag },
    /// Waits for one payload from `src` (the leader, or a broadcast root).
    Member { src: usize },
}

/// Leader-side collective semantics.
#[derive(Debug)]
pub(crate) enum OpKind {
    /// Elementwise reduction, full result to every member.
    Allreduce(ReduceOp),
    /// Reduction; the *full* result is shared with every member (one `Arc`
    /// clone each) and members slice their owned ranges locally — cheaper
    /// than the leader materializing a per-member concatenation.
    ReduceScatter(ReduceOp),
    /// Begun allgather: metered as the gather half of a ring allreduce.
    AllgatherBegin,
    /// Blocking allgather: metered as one rank's contribution (the
    /// blocking-form convention the mutex backend uses).
    AllgatherBlocking,
}

/// World-shared half of the ring engine: the sleep doorbell and the spin
/// budget. The rings themselves are distributed into the per-rank
/// [`RingHandle`]s at world construction.
///
/// The doorbell is deliberately *one* condvar for the whole world, not a
/// per-rank parking slot: a leader releasing `p − 1` members costs one
/// `notify_all` (one futex syscall) instead of `p − 1` unparks, which is
/// exactly the wake-batching that makes a condvar rendezvous fast. It is
/// touched only on the cold path — a thread locks it solely after its spin
/// and yield budgets are exhausted, and a producer only when `sleepers`
/// says somebody actually sleeps — so the hot path stays lock-free.
#[derive(Debug)]
pub(crate) struct RingShared {
    doorbell: Mutex<()>,
    doorbell_cv: Condvar,
    /// Threads currently inside (or entering) a doorbell wait.
    sleepers: CachePadded<AtomicUsize>,
    /// Sense-reversing barrier state per group, created on first use. The
    /// map lock is off the hot path: every handle caches the `Arc` after
    /// its first barrier on a group.
    barriers: Mutex<HashMap<GroupId, Arc<BarrierState>>>,
    spin_limit: u32,
    yield_limit: u32,
    park_timeout: Duration,
}

/// Centralized sense-reversing barrier for one group: ranks bump `arrived`,
/// the last one resets it and flips `generation`, everyone else waits for
/// the flip. One `fetch_add` per rank per barrier — no messages, no locks.
#[derive(Debug, Default)]
pub(crate) struct BarrierState {
    arrived: CachePadded<AtomicUsize>,
    generation: CachePadded<AtomicU64>,
}

impl RingShared {
    pub(crate) fn new(world: usize) -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        // Spinning only pays when the peer can actually run concurrently;
        // oversubscribed worlds yield almost immediately (handing the core
        // straight to the producer) and fall back to the doorbell once
        // yielding stops paying.
        let spin_limit = if world <= cores { 4096 } else { 16 };
        RingShared {
            doorbell: Mutex::new(()),
            doorbell_cv: Condvar::new(),
            sleepers: CachePadded(AtomicUsize::new(0)),
            barriers: Mutex::new(HashMap::new()),
            spin_limit,
            yield_limit: spin_limit + 256,
            park_timeout: Duration::from_micros(100),
        }
    }

    /// Announce ring activity to any sleeping rank. The `SeqCst` fence pairs
    /// with the one in [`RingHandle::wait_step`]: either this load sees the
    /// sleeper's registration (and rings the doorbell), or the sleeper's
    /// ring-empty re-check sees the push (and never sleeps) — a wakeup
    /// cannot be lost. When nobody sleeps this is a fence plus one load.
    fn wake(&self) {
        fence(Ordering::SeqCst);
        if self.sleepers.0.load(Ordering::SeqCst) > 0 {
            // Locking (and immediately dropping) the doorbell serializes
            // against a sleeper between its re-check and its wait, so the
            // notify below cannot slip into that window.
            drop(self.doorbell.lock().unwrap());
            self.doorbell_cv.notify_all();
        }
    }

    /// Fetch (or lazily create) the barrier state for `gid`.
    fn barrier_state(&self, gid: GroupId) -> Arc<BarrierState> {
        Arc::clone(self.barriers.lock().unwrap().entry(gid).or_default())
    }
}

/// Per-rank half of the ring engine: this rank's ring endpoints, the
/// reorder stash, and the in-flight role table. Owned by the rank's
/// [`crate::ThreadComm`] handle (behind its uncontended handle mutex).
#[derive(Debug)]
pub(crate) struct RingHandle {
    rank: usize,
    /// `tx[d]`: producer end of the `self → d` ring (`None` at `d == rank`).
    tx: Vec<Option<Producer<Message>>>,
    /// `rx[s]`: consumer end of the `s → self` ring.
    rx: Vec<Option<Consumer<Message>>>,
    /// Messages drained but not yet claimed, keyed `(gid, seq, src)`.
    stash: HashMap<(GroupId, u64, usize), Arc<[f32]>>,
    /// In-flight collectives this rank participates in, keyed `(gid, seq)`.
    roles: HashMap<(GroupId, u64), Role>,
    /// Per-group barrier state, cached from [`RingShared::barriers`] so the
    /// steady-state barrier never touches the world map lock.
    barrier_cache: HashMap<GroupId, Arc<BarrierState>>,
}

/// Build the full ring mesh for `world` ranks (`capacity` messages per
/// ordered pair) and deal the endpoints out as per-rank handles.
pub(crate) fn build_mesh(world: usize, capacity: usize) -> Vec<RingHandle> {
    let mut handles: Vec<RingHandle> = (0..world)
        .map(|rank| RingHandle {
            rank,
            tx: (0..world).map(|_| None).collect(),
            rx: (0..world).map(|_| None).collect(),
            stash: HashMap::new(),
            roles: HashMap::new(),
            barrier_cache: HashMap::new(),
        })
        .collect();
    for src in 0..world {
        for dst in 0..world {
            if src == dst {
                continue;
            }
            let (tx, rx) = spsc::ring::<Message>(capacity);
            handles[src].tx[dst] = Some(tx);
            handles[dst].rx[src] = Some(rx);
        }
    }
    handles
}

impl RingHandle {
    /// Pop everything currently addressed to this rank into the stash.
    fn drain(&mut self) {
        let RingHandle { rx, stash, .. } = self;
        for (src, rx) in rx.iter_mut().enumerate() {
            if let Some(rx) = rx {
                while let Some(msg) = rx.pop() {
                    stash.insert((msg.gid, msg.seq, src), msg.data);
                }
            }
        }
    }

    /// Push with backpressure: if `dst`'s ring is full, drain our own rings
    /// (so a mutually-full pair cannot deadlock) and spin-then-park until a
    /// slot frees.
    fn push(&mut self, shared: &RingShared, dst: usize, msg: Message) {
        self.push_quiet(shared, dst, msg);
        shared.wake();
    }

    /// [`Self::push`] without the doorbell: fan-out loops (a leader
    /// distributing `p − 1` results) push quietly and ring the doorbell
    /// once at the end — one `notify_all` releases every sleeping member.
    fn push_quiet(&mut self, shared: &RingShared, dst: usize, mut msg: Message) {
        let mut spins = 0u32;
        loop {
            match self.tx[dst].as_mut().expect("no self-ring pushes").push(msg) {
                Ok(()) => return,
                Err(back) => msg = back,
            }
            // Announce everything pushed so far before waiting: the consumer
            // whose pop would free our slot may itself be asleep waiting for
            // a message this fan-out already delivered.
            shared.wake();
            self.wait_step(shared, &mut spins);
        }
    }

    /// One beat of the spin/yield/sleep policy: drain, then escalate — busy
    /// spin while the wait is young, yield the core (the fastest handoff to
    /// the producer on an oversubscribed machine), then sleep on the shared
    /// doorbell.
    fn wait_step(&mut self, shared: &RingShared, spins: &mut u32) {
        self.drain();
        if *spins < shared.spin_limit {
            *spins += 1;
            std::hint::spin_loop();
            return;
        }
        if *spins < shared.yield_limit {
            *spins += 1;
            std::thread::yield_now();
            return;
        }
        let guard = shared.doorbell.lock().unwrap();
        shared.sleepers.0.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        // Re-check after registering (fence pairing with `RingShared::wake`):
        // either this check sees a producer's push and we skip the sleep, or
        // the producer's `sleepers` load sees our registration and rings the
        // doorbell — which it can only do once we are actually inside
        // `wait_timeout` (it must take the lock we hold until then). The
        // timeout is a pure safety net.
        if self.rx.iter().flatten().all(Consumer::is_empty) {
            let _ = shared.doorbell_cv.wait_timeout(guard, shared.park_timeout).unwrap();
        }
        shared.sleepers.0.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wait until `done(self)` holds, draining rings throughout and
    /// escalating spin → yield → doorbell sleep. Unlike [`Self::wait_step`]
    /// (whose sleep re-check is ring emptiness), the sleep re-check here is
    /// `done` itself, so conditions that are not ring-visible — the barrier
    /// generation flip — also synchronize with [`RingShared::wake`].
    fn wait_until(&mut self, shared: &RingShared, mut done: impl FnMut(&mut Self) -> bool) {
        let mut spins = 0u32;
        loop {
            self.drain();
            if done(self) {
                return;
            }
            if spins < shared.spin_limit {
                spins += 1;
                std::hint::spin_loop();
                continue;
            }
            if spins < shared.yield_limit {
                spins += 1;
                std::thread::yield_now();
                continue;
            }
            let guard = shared.doorbell.lock().unwrap();
            shared.sleepers.0.fetch_add(1, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            // Same no-lost-wakeup protocol as `wait_step`, with `done` (plus
            // ring emptiness) as the re-check under the doorbell lock.
            self.drain();
            if !done(self) && self.rx.iter().flatten().all(Consumer::is_empty) {
                let _ = shared.doorbell_cv.wait_timeout(guard, shared.park_timeout).unwrap();
            } else {
                drop(guard);
            }
            shared.sleepers.0.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Centralized sense-reversing barrier: one `fetch_add` per rank, the
    /// last arriver flips the group generation and rings the doorbell.
    /// Returns whether this rank was the last arriver (the caller meters
    /// the collective exactly once on that rank). Waiting drains rings, so
    /// peers mid-push on unrelated collectives never stall against a rank
    /// sitting in a barrier.
    pub(crate) fn barrier(&mut self, shared: &RingShared, gid: GroupId, p: usize) -> bool {
        let state = match self.barrier_cache.get(&gid) {
            Some(s) => Arc::clone(s),
            None => {
                let s = shared.barrier_state(gid);
                self.barrier_cache.insert(gid, Arc::clone(&s));
                s
            }
        };
        let gen = state.generation.0.load(Ordering::Acquire);
        if state.arrived.0.fetch_add(1, Ordering::AcqRel) == p - 1 {
            // All arrived. Reset before the flip: ranks re-enter this
            // group's next barrier only after they observe the flip
            // (Acquire), which orders the reset before their increments.
            state.arrived.0.store(0, Ordering::Relaxed);
            state.generation.0.store(gen.wrapping_add(1), Ordering::Release);
            shared.wake();
            true
        } else {
            self.wait_until(shared, |_| state.generation.0.load(Ordering::Acquire) != gen);
            false
        }
    }

    fn members_arrived(&self, gid: GroupId, seq: u64, members: &[usize]) -> bool {
        members.iter().all(|&m| m == self.rank || self.stash.contains_key(&(gid, seq, m)))
    }

    /// Non-blocking readiness probe for an in-flight collective.
    pub(crate) fn poll(&mut self, gid: GroupId, seq: u64) -> bool {
        self.drain();
        match self.roles.get(&(gid, seq)) {
            Some(Role::Leader { members, .. }) => self.members_arrived(gid, seq, members),
            Some(Role::Member { src }) => self.stash.contains_key(&(gid, seq, *src)),
            None => panic!("poll_ready on a collective this rank never began"),
        }
    }

    /// Push one collective contribution to `dst` (a member's begin-side
    /// send to its group leader).
    pub(crate) fn send_contribution(
        &mut self,
        shared: &RingShared,
        dst: usize,
        gid: GroupId,
        seq: u64,
        data: Arc<[f32]>,
    ) {
        self.push(shared, dst, Message { gid, seq, data });
    }

    /// Record an in-flight role.
    pub(crate) fn insert_role(&mut self, gid: GroupId, seq: u64, role: Role) {
        let prev = self.roles.insert((gid, seq), role);
        debug_assert!(prev.is_none(), "duplicate in-flight collective key");
    }

    /// Broadcast-root send: push `payload` to every other member.
    pub(crate) fn scatter_payload(
        &mut self,
        shared: &RingShared,
        gid: GroupId,
        seq: u64,
        members: &[usize],
        payload: &[f32],
    ) {
        let payload: Arc<[f32]> = payload.into();
        for &m in members {
            if m != self.rank {
                self.push_quiet(shared, m, Message { gid, seq, data: Arc::clone(&payload) });
            }
        }
        shared.wake();
    }

    /// Complete an in-flight collective and return this rank's result.
    /// Leader completion performs the rank-ordered reduction (or
    /// concatenation), meters the collective once, and distributes every
    /// member's result before returning its own.
    pub(crate) fn complete_vec(
        &mut self,
        shared: &RingShared,
        meter: &Meter,
        cost: &CollectiveCostModel,
        gid: GroupId,
        seq: u64,
    ) -> Arc<[f32]> {
        let role = self.roles.remove(&(gid, seq)).expect("completing an unknown collective");
        match role {
            Role::Member { src } => {
                // In-order fast path: the wanted payload is almost always
                // the next message in the `src` ring, so pop it directly and
                // skip the stash round-trip (two hash operations per
                // payload). Mismatches — cross-group interleavings — fall
                // back to the stash, and `wait_step`'s greedy drain keeps
                // every ring moving while we wait.
                let mut spins = 0u32;
                loop {
                    if let Some(data) = self.stash.remove(&(gid, seq, src)) {
                        return data;
                    }
                    let popped = self.rx[src].as_mut().expect("member waits on a peer ring").pop();
                    match popped {
                        Some(msg) => {
                            if msg.gid == gid && msg.seq == seq {
                                return msg.data;
                            }
                            self.stash.insert((msg.gid, msg.seq, src), msg.data);
                        }
                        None => self.wait_step(shared, &mut spins),
                    }
                }
            }
            Role::Leader { kind, own, members, tag } => {
                let arrived = Arc::clone(&members);
                self.wait_until(shared, |h| h.members_arrived(gid, seq, &arrived));
                let mut parts: BTreeMap<usize, Arc<[f32]>> = BTreeMap::new();
                for &m in members.iter() {
                    if m != self.rank {
                        parts.insert(m, self.stash.remove(&(gid, seq, m)).expect("member part"));
                    }
                }
                parts.insert(self.rank, own);
                self.finish_as_leader(shared, meter, cost, gid, seq, kind, parts, &members, tag)
            }
        }
    }

    /// Leader epilogue: reduce/concatenate `parts`, meter, distribute, and
    /// return the leader's own result.
    #[allow(clippy::too_many_arguments)]
    fn finish_as_leader(
        &mut self,
        shared: &RingShared,
        meter: &Meter,
        cost: &CollectiveCostModel,
        gid: GroupId,
        seq: u64,
        kind: OpKind,
        parts: BTreeMap<usize, Arc<[f32]>>,
        members: &[usize],
        tag: CommTag,
    ) -> Arc<[f32]> {
        let p = members.len();
        match kind {
            OpKind::Allreduce(op) => {
                let result: Arc<[f32]> = reduce_scaled(&parts, op, p).into();
                let bytes = std::mem::size_of::<f32>() * result.len();
                meter.record(CommEvent {
                    op: CommOp::Allreduce,
                    bytes,
                    group_size: p,
                    seconds: cost.allreduce(bytes, p),
                    tag,
                });
                for &m in members {
                    if m != self.rank {
                        self.push_quiet(shared, m, Message { gid, seq, data: Arc::clone(&result) });
                    }
                }
                shared.wake();
                result
            }
            OpKind::ReduceScatter(op) => {
                let result: Arc<[f32]> = reduce_scaled(&parts, op, p).into();
                let bytes = std::mem::size_of::<f32>() * result.len();
                meter.record(CommEvent {
                    op: CommOp::ReduceScatter,
                    // The reduce half of a ring allreduce (see CommEvent::bytes).
                    bytes: bytes / 2,
                    group_size: p,
                    seconds: cost.reduce_scatter(bytes, p),
                    tag,
                });
                for &m in members {
                    if m != self.rank {
                        self.push_quiet(shared, m, Message { gid, seq, data: Arc::clone(&result) });
                    }
                }
                shared.wake();
                result
            }
            OpKind::AllgatherBegin | OpKind::AllgatherBlocking => {
                let mut gathered = Vec::new();
                for part in parts.values() {
                    gathered.extend_from_slice(part);
                }
                let out: Arc<[f32]> = gathered.into();
                let total_bytes = std::mem::size_of::<f32>() * out.len();
                let own_bytes =
                    std::mem::size_of::<f32>() * parts.get(&self.rank).map_or(0, |a| a.len());
                let (bytes, seconds) = match kind {
                    // Begun form: the gather half of a ring allreduce.
                    OpKind::AllgatherBegin => {
                        (total_bytes / 2, cost.allgather(total_bytes.div_ceil(p), p))
                    }
                    _ => (own_bytes, cost.allgather(own_bytes, p)),
                };
                meter.record(CommEvent {
                    op: CommOp::Allgather,
                    bytes,
                    group_size: p,
                    seconds,
                    tag,
                });
                for &m in members {
                    if m != self.rank {
                        self.push_quiet(shared, m, Message { gid, seq, data: Arc::clone(&out) });
                    }
                }
                shared.wake();
                out
            }
        }
    }
}

/// Reduce in ascending rank order and apply the `Avg` scale — shared
/// numerics with the mutex backend (bitwise identical results).
fn reduce_scaled(parts: &BTreeMap<usize, Arc<[f32]>>, op: ReduceOp, p: usize) -> Vec<f32> {
    let mut result = crate::thread_comm::reduce_rank_order(parts, op);
    if op == ReduceOp::Avg {
        let inv = 1.0 / p as f32;
        for v in result.iter_mut() {
            *v *= inv;
        }
    }
    result
}
