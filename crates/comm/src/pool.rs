//! A shared thread-rank pool for running many communicator worlds at once.
//!
//! The serve layer schedules a queue of training jobs over one machine; each
//! job wants its own [`ThreadComm`] world. A [`RankPool`] bounds how many
//! rank threads run concurrently across *all* jobs: [`RankPool::run_job`]
//! acquires one permit per rank (blocking while the pool is full), spawns
//! the job's world through [`ThreadComm::run_with`], and releases the
//! permits when the job's rank threads join — even if a rank panics.
//!
//! Every job gets a **fresh, fully isolated world**: its own rendezvous
//! slots, SPSC rings, group table, and meter. Ranks are numbered `0..world`
//! within each job regardless of which pool permits backed them, so a job
//! checkpointed at one world size restores cleanly at another.

use std::sync::{Condvar, Mutex};

use crate::{CommOptions, ThreadComm};

/// A counting semaphore over rank-thread capacity, shared by every job a
/// serve pool runs.
#[derive(Debug)]
pub struct RankPool {
    capacity: usize,
    opts: CommOptions,
    available: Mutex<usize>,
    freed: Condvar,
}

/// RAII permit lease: gives the permits back (and wakes waiters) on drop,
/// including during a panic unwind out of a job body.
struct Lease<'a> {
    pool: &'a RankPool,
    ranks: usize,
}

impl Drop for Lease<'_> {
    fn drop(&mut self) {
        let mut avail = self.pool.available.lock().expect("rank pool poisoned");
        *avail += self.ranks;
        self.pool.freed.notify_all();
    }
}

impl RankPool {
    /// A pool of `capacity` rank threads with default communicator options.
    pub fn new(capacity: usize) -> Self {
        Self::with_options(capacity, CommOptions::default())
    }

    /// A pool of `capacity` rank threads whose job worlds are constructed
    /// with explicit [`CommOptions`] (backend, cost model, ring capacity).
    pub fn with_options(capacity: usize, opts: CommOptions) -> Self {
        assert!(capacity >= 1, "rank pool needs at least one rank");
        RankPool { capacity, opts, available: Mutex::new(capacity), freed: Condvar::new() }
    }

    /// Total rank threads the pool may run concurrently.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rank threads currently unclaimed (racy by nature — informational).
    pub fn available(&self) -> usize {
        *self.available.lock().expect("rank pool poisoned")
    }

    /// Run one job on a fresh `world`-rank communicator world, blocking
    /// until the pool has `world` free rank permits. Returns the per-rank
    /// results in rank order, exactly like [`ThreadComm::run_with`].
    ///
    /// # Panics
    /// If `world` exceeds the pool capacity (such a job could never start),
    /// or if a rank thread panics.
    pub fn run_job<R, F>(&self, world: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&ThreadComm) -> R + Sync,
    {
        assert!(world >= 1, "job world must be positive");
        assert!(
            world <= self.capacity,
            "job world {world} exceeds pool capacity {}",
            self.capacity
        );
        {
            let mut avail = self.available.lock().expect("rank pool poisoned");
            while *avail < world {
                avail = self.freed.wait(avail).expect("rank pool poisoned");
            }
            *avail -= world;
        }
        let _lease = Lease { pool: self, ranks: world };
        ThreadComm::run_with(world, self.opts.clone(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Communicator, ReduceOp};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_get_isolated_worlds() {
        let pool = RankPool::new(8);
        let out = pool.run_job(4, |comm| {
            let mut buf = vec![comm.rank() as f32; 2];
            comm.allreduce(&mut buf, ReduceOp::Sum);
            buf[0]
        });
        assert_eq!(out, vec![6.0; 4]);
        assert_eq!(pool.available(), 8, "permits return after the job");
    }

    #[test]
    fn concurrent_jobs_never_exceed_capacity() {
        let pool = RankPool::new(4);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    pool.run_job(3, |comm| {
                        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        comm.barrier();
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        live.fetch_sub(1, Ordering::SeqCst);
                    });
                });
            }
        });
        // With capacity 4 and 3-rank jobs, jobs must serialize: at most one
        // job's 3 ranks alive at once.
        assert!(peak.load(Ordering::SeqCst) <= 3, "peak {}", peak.load(Ordering::SeqCst));
        assert_eq!(pool.available(), 4);
    }

    #[test]
    #[should_panic(expected = "exceeds pool capacity")]
    fn oversized_job_rejected() {
        let pool = RankPool::new(2);
        let _ = pool.run_job(3, |_| ());
    }

    #[test]
    fn permits_survive_a_panicking_job() {
        let pool = RankPool::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_job(2, |comm| {
                if comm.rank() == 1 {
                    panic!("job body failure");
                }
                comm.rank()
            })
        }));
        assert!(r.is_err());
        assert_eq!(pool.available(), 2, "lease must release on unwind");
        // The pool still runs new jobs afterwards.
        let out = pool.run_job(2, |comm| comm.rank());
        assert_eq!(out, vec![0, 1]);
    }
}
