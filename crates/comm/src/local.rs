//! Single-process communicator (world size 1).

use crate::meter::{Meter, MeterSnapshot};
use crate::{Communicator, ReduceOp};

/// A no-op communicator for single-process training, mirroring KAISA's
/// automatic backend selection (Torch / Horovod / single-process).
///
/// All collectives are identities; the meter stays at zero.
#[derive(Debug, Default)]
pub struct LocalComm {
    meter: Meter,
}

impl LocalComm {
    /// Create a single-rank communicator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Communicator for LocalComm {
    fn rank(&self) -> usize {
        0
    }

    fn world_size(&self) -> usize {
        1
    }

    fn allreduce(&self, _buf: &mut [f32], _op: ReduceOp) {}

    fn allreduce_group(&self, _buf: &mut [f32], _op: ReduceOp, group: &[usize]) {
        debug_assert_eq!(group, [0], "LocalComm only has rank 0");
    }

    fn broadcast(&self, _buf: &mut [f32], root: usize) {
        debug_assert_eq!(root, 0, "LocalComm only has rank 0");
    }

    fn broadcast_group(&self, _buf: &mut [f32], root: usize, group: &[usize]) {
        debug_assert_eq!(root, 0);
        debug_assert_eq!(group, [0]);
    }

    fn allgather(&self, send: &[f32]) -> Vec<f32> {
        send.to_vec()
    }

    fn reduce_scatter(&self, send: &[f32]) -> Vec<f32> {
        send.to_vec()
    }

    fn barrier(&self) {}

    fn meter_snapshot(&self) -> MeterSnapshot {
        self.meter.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        let comm = LocalComm::new();
        assert_eq!(comm.rank(), 0);
        assert_eq!(comm.world_size(), 1);
        let mut buf = vec![1.0, 2.0];
        comm.allreduce(&mut buf, ReduceOp::Sum);
        assert_eq!(buf, vec![1.0, 2.0]);
        comm.broadcast(&mut buf, 0);
        assert_eq!(buf, vec![1.0, 2.0]);
        assert_eq!(comm.allgather(&buf), buf);
        assert_eq!(comm.reduce_scatter(&buf), buf);
        assert_eq!(comm.simulated_seconds(), 0.0);
    }
}
