//! Cache-line-padded lock-free single-producer/single-consumer ring.
//!
//! The ring backend of [`crate::ThreadComm`] keeps one of these per ordered
//! rank pair, so every payload moves rank→rank without ever touching a
//! mutex: the producer owns `tail`, the consumer owns `head`, and the two
//! indices live on separate cache lines ([`#[repr(align(64))]`] padding) so
//! a push never invalidates the consumer's line and vice versa — the false
//! sharing that would otherwise re-serialize the "lock-free" path.
//!
//! The SPSC discipline is enforced at compile time: [`ring`] returns a
//! [`Producer`]/[`Consumer`] pair, neither is `Clone`, and both `push` and
//! `pop` take `&mut self`. That makes the unsafe interior (a slot array of
//! `UnsafeCell<MaybeUninit<T>>`) sound: at most one thread writes any slot,
//! at most one thread reads it, and the acquire/release handoff on
//! `tail`/`head` orders the slot contents between them.
//!
//! This module is the only place in `kaisa-comm` (together with the sibling
//! FFI shim in `affinity`) allowed to use `unsafe`; the crate root denies it
//! everywhere else.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads and aligns a value to a 64-byte cache line so two adjacent values
/// never share a line (the classic false-sharing killer for SPSC indices).
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

struct Shared<T> {
    /// Slot storage; length is a power of two so `index & mask` wraps.
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer will pop. Written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will push. Written only by the producer.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the producer/consumer split guarantees each slot is written by at
// most one thread and read by at most one thread, with the release store of
// `tail` (push) / `head` (pop) publishing the slot contents to the other
// side's acquire load. `T: Send` is required because values cross threads.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for Shared<T> {}
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Drop whatever is still queued. `&mut self` means both endpoints
        // are gone, so plain loads are exact.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for i in head..tail {
            // SAFETY: slots in [head, tail) were initialized by a push and
            // never popped; we drop each exactly once.
            #[allow(unsafe_code)]
            unsafe {
                (*self.buf[i & self.mask].get()).assume_init_drop()
            };
        }
    }
}

/// The write end of an SPSC ring; see [`ring`]. Not `Clone` — single
/// producer by construction.
#[derive(Debug)]
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Cached copy of the consumer's head, refreshed only when the ring
    /// looks full — most pushes never read the shared head at all.
    head_cache: usize,
}

/// The read end of an SPSC ring; see [`ring`]. Not `Clone` — single
/// consumer by construction.
#[derive(Debug)]
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").field("capacity", &(self.mask + 1)).finish()
    }
}

/// Create a lock-free SPSC ring holding at most `capacity` values
/// (rounded up to a power of two, minimum 2). Returns the producer and
/// consumer endpoints; each may move to a different thread.
pub fn ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let shared = Arc::new(Shared {
        buf,
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
    });
    (Producer { shared: Arc::clone(&shared), head_cache: 0 }, Consumer { shared })
}

impl<T: Send> Producer<T> {
    /// Slots the ring can hold.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Push `v`, or give it back if the ring is full. Never blocks and
    /// never takes a lock: one relaxed load, at most one acquire load, one
    /// slot write, one release store.
    pub fn push(&mut self, v: T) -> Result<(), T> {
        let shared = &*self.shared;
        let tail = shared.tail.0.load(Ordering::Relaxed);
        if tail.wrapping_sub(self.head_cache) > shared.mask {
            self.head_cache = shared.head.0.load(Ordering::Acquire);
            if tail.wrapping_sub(self.head_cache) > shared.mask {
                return Err(v);
            }
        }
        // SAFETY: `tail - head <= mask` means slot `tail & mask` is not
        // live: the consumer has popped (or never reached) it, and only this
        // producer writes slots. The release store below publishes the write.
        #[allow(unsafe_code)]
        unsafe {
            (*shared.buf[tail & shared.mask].get()).write(v)
        };
        shared.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }
}

impl<T: Send> Consumer<T> {
    /// Pop the oldest value, or `None` when the ring is empty. Never blocks
    /// and never takes a lock.
    pub fn pop(&mut self) -> Option<T> {
        let shared = &*self.shared;
        let head = shared.head.0.load(Ordering::Relaxed);
        if head == shared.tail.0.load(Ordering::Acquire) {
            return None;
        }
        // SAFETY: `head < tail` under the acquire load, so slot
        // `head & mask` was initialized by the producer's push and its write
        // is visible; advancing `head` afterwards hands the slot back.
        #[allow(unsafe_code)]
        let v = unsafe { (*shared.buf[head & shared.mask].get()).assume_init_read() };
        shared.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(v)
    }

    /// Whether a pop would currently return `None`. A `false` answer is
    /// immediately actionable (values are only ever *added* by the other
    /// side); a `true` answer can race with an in-flight push.
    pub fn is_empty(&self) -> bool {
        let shared = &*self.shared;
        shared.head.0.load(Ordering::Relaxed) == shared.tail.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_with_wraparound() {
        let (mut tx, mut rx) = ring::<u64>(4);
        for round in 0..10u64 {
            for i in 0..4 {
                tx.push(round * 4 + i).unwrap();
            }
            assert!(tx.push(99).is_err(), "ring must report full");
            for i in 0..4 {
                assert_eq!(rx.pop(), Some(round * 4 + i));
            }
            assert_eq!(rx.pop(), None);
        }
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = ring::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = ring::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn drops_queued_values_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let (mut tx, mut rx) = ring::<Counted>(8);
            for _ in 0..5 {
                tx.push(Counted).unwrap();
            }
            drop(rx.pop()); // one dropped by the consumer
            drop(rx.pop()); // two
        } // three left in the ring, dropped with it
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn two_thread_stream_is_lossless_and_ordered() {
        let (mut tx, mut rx) = ring::<u32>(16);
        const N: u32 = 100_000;
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..N {
                    let mut v = i;
                    loop {
                        match tx.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                // Yield, not spin: on a single-core runner a
                                // pure spin burns the whole timeslice while
                                // the peer is descheduled.
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            });
            s.spawn(move || {
                let mut next = 0u32;
                while next < N {
                    match rx.pop() {
                        Some(v) => {
                            assert_eq!(v, next);
                            next += 1;
                        }
                        None => std::thread::yield_now(),
                    }
                }
                assert!(rx.pop().is_none());
            });
        });
    }

    #[test]
    fn heap_payloads_transfer_intact() {
        let (mut tx, mut rx) = ring::<Vec<f32>>(4);
        tx.push(vec![1.0, 2.0, 3.0]).unwrap();
        tx.push(Vec::new()).unwrap();
        assert_eq!(rx.pop(), Some(vec![1.0, 2.0, 3.0]));
        assert_eq!(rx.pop(), Some(Vec::new()));
    }
}
