//! Opt-in core-affinity pinning for rank threads.
//!
//! When a world is spawned with [`crate::CommOptions::pin_cores`], each rank
//! thread pins itself to core `rank % available_parallelism` before running.
//! Pinning keeps a rank's SPSC ring indices and stash hot in one core's
//! cache and stops the OS from migrating rank threads mid-collective — the
//! main residual jitter source once the lock handoff is gone. It is off by
//! default because it is strictly worse on oversubscribed machines (CI
//! runners with fewer cores than ranks), where the scheduler must multiplex
//! freely.
//!
//! On Linux this calls `sched_setaffinity(2)` directly through the libc the
//! Rust standard library already links — no crate dependency. Elsewhere it
//! is a no-op that reports failure.

/// Number of `u64` words in the affinity mask: 1024 CPUs, matching glibc's
/// `cpu_set_t`.
#[cfg(target_os = "linux")]
const MASK_WORDS: usize = 16;

/// Pin the calling thread to `core` (modulo the mask width). Returns `true`
/// if the kernel accepted the mask, `false` on error or on platforms
/// without affinity support.
#[cfg(target_os = "linux")]
pub fn pin_current_thread(core: usize) -> bool {
    #[allow(unsafe_code)]
    extern "C" {
        // int sched_setaffinity(pid_t pid, size_t cpusetsize, const cpu_set_t *mask);
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    let mut mask = [0u64; MASK_WORDS];
    let bit = core % (MASK_WORDS * 64);
    mask[bit / 64] |= 1u64 << (bit % 64);
    // SAFETY: pid 0 addresses the calling thread; the mask pointer is valid
    // for `cpusetsize` bytes for the duration of the call and the kernel
    // only reads it.
    #[allow(unsafe_code)]
    let rc = unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) };
    rc == 0
}

/// Pin the calling thread to `core`. No-op returning `false` on platforms
/// without `sched_setaffinity`.
#[cfg(not(target_os = "linux"))]
pub fn pin_current_thread(core: usize) -> bool {
    let _ = core;
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn pinning_to_core_zero_succeeds() {
        // Core 0 always exists; run on a scratch thread so the test
        // harness thread keeps its full mask.
        let ok = std::thread::spawn(|| pin_current_thread(0)).join().unwrap();
        assert!(ok, "sched_setaffinity to core 0 must succeed");
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn out_of_range_cores_wrap_instead_of_failing() {
        let ok = std::thread::spawn(|| pin_current_thread(1 << 40)).join().unwrap();
        assert!(ok, "mask bit must wrap into the supported range");
    }
}
