//! Property-based tests on the collectives: for arbitrary world sizes,
//! payloads, and group partitions, the rendezvous implementation must match
//! the sequential specification.

use kaisa_comm::{CommTag, Communicator, ReduceOp, ShardSpec, ThreadComm};
use kaisa_tensor::Rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn allreduce_sum_matches_sequential(world in 1usize..9, len in 1usize..64, seed in any::<u64>()) {
        // Each rank contributes a deterministic pseudo-random buffer; every
        // rank must receive the exact rank-ordered sequential sum.
        let contributions: Vec<Vec<f32>> = (0..world)
            .map(|r| {
                let mut rng = Rng::seed_from_u64(seed ^ (r as u64) << 8);
                (0..len).map(|_| rng.uniform(-10.0, 10.0)).collect()
            })
            .collect();
        let mut expected = vec![0.0f32; len];
        for c in &contributions {
            for (e, v) in expected.iter_mut().zip(c) {
                *e += *v;
            }
        }
        let outputs = ThreadComm::run(world, |comm| {
            let mut buf = contributions[comm.rank()].clone();
            comm.allreduce(&mut buf, ReduceOp::Sum);
            buf
        });
        for out in outputs {
            prop_assert_eq!(&out, &expected, "allreduce must be rank-order deterministic");
        }
    }

    #[test]
    fn allreduce_max_matches_sequential(world in 1usize..7, len in 1usize..32, seed in any::<u64>()) {
        let contributions: Vec<Vec<f32>> = (0..world)
            .map(|r| {
                let mut rng = Rng::seed_from_u64(seed ^ (r as u64) << 8);
                (0..len).map(|_| rng.uniform(-5.0, 5.0)).collect()
            })
            .collect();
        let expected: Vec<f32> = (0..len)
            .map(|i| contributions.iter().map(|c| c[i]).fold(f32::MIN, f32::max))
            .collect();
        let outputs = ThreadComm::run(world, |comm| {
            let mut buf = contributions[comm.rank()].clone();
            comm.allreduce(&mut buf, ReduceOp::Max);
            buf
        });
        for out in outputs {
            prop_assert_eq!(&out, &expected);
        }
    }

    #[test]
    fn broadcast_from_any_root(world in 1usize..8, root_sel in any::<u64>(), len in 1usize..32) {
        let root = (root_sel % world as u64) as usize;
        let payload: Vec<f32> = (0..len).map(|i| i as f32 + root as f32 * 100.0).collect();
        let p = payload.clone();
        let outputs = ThreadComm::run(world, move |comm| {
            let mut buf = if comm.rank() == root { p.clone() } else { vec![0.0; len] };
            comm.broadcast(&mut buf, root);
            buf
        });
        for out in outputs {
            prop_assert_eq!(&out, &payload);
        }
    }

    #[test]
    fn allgather_concatenates_in_rank_order(world in 1usize..8, len in 1usize..16) {
        let outputs = ThreadComm::run(world, |comm| {
            let send: Vec<f32> = (0..len).map(|i| (comm.rank() * 1000 + i) as f32).collect();
            comm.allgather(&send)
        });
        let expected: Vec<f32> = (0..world)
            .flat_map(|r| (0..len).map(move |i| (r * 1000 + i) as f32))
            .collect();
        for out in outputs {
            prop_assert_eq!(&out, &expected);
        }
    }

    #[test]
    fn reduce_scatter_pad_and_trim_matches_sequential(
        world in 1usize..9,
        len in 1usize..64,
        seed in any::<u64>(),
    ) {
        // Arbitrary payload lengths, including ones world does not divide:
        // with chunk = ⌈len/world⌉, rank k must receive exactly
        // sum[k·chunk .. min((k+1)·chunk, len)], bit-for-bit (rank-ordered
        // reduction), and trailing ranks may receive short or empty chunks.
        let contributions: Vec<Vec<f32>> = (0..world)
            .map(|r| {
                let mut rng = Rng::seed_from_u64(seed ^ (r as u64) << 8);
                (0..len).map(|_| rng.uniform(-10.0, 10.0)).collect()
            })
            .collect();
        let mut expected = vec![0.0f32; len];
        for c in &contributions {
            for (e, v) in expected.iter_mut().zip(c) {
                *e += *v;
            }
        }
        let outputs = ThreadComm::run(world, |comm| {
            comm.reduce_scatter(&contributions[comm.rank()])
        });
        let chunk = len.div_ceil(world);
        let mut covered = 0usize;
        for (rank, out) in outputs.iter().enumerate() {
            let start = (rank * chunk).min(len);
            let end = (start + chunk).min(len);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(
                bits(out),
                bits(&expected[start..end]),
                "rank {} owns [{}, {})", rank, start, end
            );
            covered += out.len();
        }
        // The shards tile the payload exactly: nothing lost, nothing doubled.
        prop_assert_eq!(covered, len);
    }

    #[test]
    fn sharded_reduce_scatter_matches_allreduce_slices(
        world in 2usize..7,
        len in 1usize..48,
        seed in any::<u64>(),
        cut_sel in any::<u64>(),
        owner_sel in any::<u64>(),
    ) {
        // An arbitrary two-shard ownership spec: the reduce-scatter result a
        // rank owns must be bitwise the same slice of a plain allreduce.
        let cut = (cut_sel % (len as u64 + 1)) as usize;
        let owner_a = (owner_sel % world as u64) as usize;
        let owner_b = ((owner_sel >> 8) % world as u64) as usize;
        let shards = [
            ShardSpec { owner: owner_a, start: 0, len: cut },
            ShardSpec { owner: owner_b, start: cut, len: len - cut },
        ];
        let contributions: Vec<Vec<f32>> = (0..world)
            .map(|r| {
                let mut rng = Rng::seed_from_u64(seed ^ (r as u64) << 8);
                (0..len).map(|_| rng.uniform(-10.0, 10.0)).collect()
            })
            .collect();
        let reference = ThreadComm::run(world, |comm| {
            let mut buf = contributions[comm.rank()].clone();
            comm.allreduce(&mut buf, ReduceOp::Avg);
            buf
        });
        let outputs = ThreadComm::run(world, |comm| {
            let group: Vec<usize> = (0..world).collect();
            let pending = comm.begin_reduce_scatter(
                &contributions[comm.rank()],
                ReduceOp::Avg,
                &group,
                &shards,
                CommTag::FactorReduce,
            );
            let owned: usize =
                shards.iter().filter(|s| s.owner == comm.rank()).map(|s| s.len).sum();
            let mut out = vec![0.0f32; owned];
            comm.complete(pending, &mut out);
            out
        });
        for (rank, out) in outputs.iter().enumerate() {
            let expected: Vec<f32> = shards
                .iter()
                .filter(|s| s.owner == rank)
                .flat_map(|s| reference[rank][s.start..s.start + s.len].iter().copied())
                .collect();
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(bits(out), bits(&expected), "rank {}", rank);
        }
    }

    #[test]
    fn group_allgather_concatenates_variable_lengths(
        world in 2usize..7,
        lens_seed in any::<u64>(),
    ) {
        // Every rank contributes a different-length piece (possibly empty);
        // each member receives the concatenation in group rank order.
        let lens: Vec<usize> = (0..world).map(|r| ((lens_seed >> (4 * r)) % 5) as usize).collect();
        let expected: Vec<f32> = (0..world)
            .flat_map(|r| (0..lens[r]).map(move |i| (r * 100 + i) as f32))
            .collect();
        let outputs = ThreadComm::run(world, |comm| {
            let r = comm.rank();
            let send: Vec<f32> = (0..lens[r]).map(|i| (r * 100 + i) as f32).collect();
            let group: Vec<usize> = (0..world).collect();
            let pending = comm.begin_allgather(&send, &group, CommTag::FactorGather);
            let mut out = vec![0.0f32; lens.iter().sum()];
            comm.complete(pending, &mut out);
            out
        });
        for out in outputs {
            prop_assert_eq!(&out, &expected);
        }
    }

    #[test]
    fn disjoint_group_partition_never_cross_talks(world_half in 1usize..5, seed in any::<u64>()) {
        // Partition 2k ranks into k disjoint pairs, each broadcasting a
        // distinct value concurrently (the HYBRID-OPT pattern) for several
        // rounds; no pair may observe another pair's payload.
        let world = world_half * 2;
        let outputs = ThreadComm::run(world, |comm| {
            let r = comm.rank();
            let root = r - (r % 2);
            let group = [root, root + 1];
            let mut seen = Vec::new();
            for round in 0..5u64 {
                let value = (root as u64 * 17 + round * 3 + seed % 1000) as f32;
                let mut buf = if r == root { vec![value] } else { vec![-1.0] };
                comm.broadcast_group(&mut buf, root, &group);
                seen.push(buf[0]);
            }
            (root, seen)
        });
        for (root, seen) in outputs {
            for (round, v) in seen.iter().enumerate() {
                let expected = (root as u64 * 17 + round as u64 * 3 + seed % 1000) as f32;
                prop_assert_eq!(*v, expected, "group rooted at {} leaked data", root);
            }
        }
    }

    #[test]
    fn interleaved_collectives_match_per_group_order(world in 2usize..6, rounds in 1usize..6) {
        // Mixed sequence: world allreduce then subgroup allreduce per round.
        // Matching is per-group in-order, so results must be deterministic.
        let outputs = ThreadComm::run(world, |comm| {
            let mut acc = 0.0f32;
            let evens: Vec<usize> = (0..world).filter(|r| r % 2 == 0).collect();
            for round in 0..rounds {
                let mut buf = vec![(comm.rank() + round) as f32];
                comm.allreduce(&mut buf, ReduceOp::Sum);
                acc += buf[0];
                if comm.rank() % 2 == 0 && evens.len() > 1 {
                    let mut sub = vec![1.0f32];
                    comm.allreduce_group(&mut sub, ReduceOp::Sum, &evens);
                    acc += sub[0];
                }
            }
            acc
        });
        // All even ranks agree; all odd ranks agree.
        let even0 = outputs[0];
        for (r, &v) in outputs.iter().enumerate() {
            if r % 2 == 0 {
                prop_assert_eq!(v, even0);
            }
        }
    }
}
