//! Property-based tests on the lock-free SPSC ring itself: wrap-around
//! indexing, full/empty boundary behavior, and lossless ordered transfer
//! under randomized producer/consumer interleavings.

use std::collections::VecDeque;

use kaisa_comm::spsc::ring;
use kaisa_comm::{CommOptions, Communicator, ReduceOp, ThreadComm, ThreadCommBackend};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_deque_model_through_wraparound(
        capacity in 0usize..33,
        seed in any::<u64>(),
        ops in 16usize..512,
    ) {
        // Single-threaded model check: the ring must behave exactly like a
        // bounded VecDeque — push fails iff full, pop is None iff empty,
        // values come out FIFO — across enough operations to wrap the
        // indices several times.
        let (mut tx, mut rx) = ring::<u64>(capacity);
        let cap = tx.capacity();
        prop_assert_eq!(cap, capacity.max(2).next_power_of_two());
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut state = seed | 1;
        let mut next_value = 0u64;
        for _ in 0..ops {
            // xorshift: cheap deterministic op schedule from the seed.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if state % 2 == 0 {
                match tx.push(next_value) {
                    Ok(()) => {
                        prop_assert!(model.len() < cap, "push succeeded on a full ring");
                        model.push_back(next_value);
                        next_value += 1;
                    }
                    Err(back) => {
                        prop_assert_eq!(back, next_value, "rejected push must return the value");
                        prop_assert_eq!(model.len(), cap, "push failed on a non-full ring");
                    }
                }
            } else {
                prop_assert_eq!(rx.pop(), model.pop_front());
            }
            prop_assert_eq!(rx.is_empty(), model.is_empty());
        }
        // Drain what's left: still FIFO, then empty forever.
        while let Some(expected) = model.pop_front() {
            prop_assert_eq!(rx.pop(), Some(expected));
        }
        prop_assert_eq!(rx.pop(), None);
    }

    #[test]
    fn full_empty_boundaries_are_exact(capacity in 0usize..17, rounds in 1usize..8) {
        // Fill to the brim, overflow must bounce, drain to the floor,
        // underflow must be None — repeated so the boundary lands on
        // different wrapped index positions each round.
        let (mut tx, mut rx) = ring::<usize>(capacity);
        let cap = tx.capacity();
        for round in 0..rounds {
            for i in 0..cap {
                prop_assert!(tx.push(round * cap + i).is_ok(), "ring full early at {i}/{cap}");
            }
            prop_assert!(tx.push(usize::MAX).is_err(), "ring must reject past capacity");
            prop_assert!(!rx.is_empty());
            for i in 0..cap {
                prop_assert_eq!(rx.pop(), Some(round * cap + i));
            }
            prop_assert_eq!(rx.pop(), None);
            prop_assert!(rx.is_empty());
        }
    }

    #[test]
    fn two_threads_lossless_under_random_yield_schedules(
        capacity in 0usize..9,
        n in 1u32..2048,
        seed in any::<u64>(),
    ) {
        // Producer and consumer each follow an independent seed-derived
        // yield schedule, randomizing which side runs ahead and where the
        // full/empty boundaries are hit. Every value must arrive exactly
        // once, in order, whatever the interleaving.
        let (mut tx, mut rx) = ring::<u32>(capacity);
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut state = seed | 1;
                for i in 0..n {
                    let mut v = i;
                    loop {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        if state % 4 == 0 {
                            std::thread::yield_now();
                        }
                        match tx.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            });
            let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            let mut next = 0u32;
            while next < n {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state % 4 == 0 {
                    std::thread::yield_now();
                }
                match rx.pop() {
                    Some(v) => {
                        assert_eq!(v, next, "values must arrive in FIFO order");
                        next += 1;
                    }
                    None => std::thread::yield_now(),
                }
            }
            assert!(rx.pop().is_none(), "no extra values may appear");
        });
    }

    #[test]
    fn backends_agree_bitwise_and_on_meters(
        world in 2usize..6,
        len in 1usize..48,
        seed in any::<u64>(),
        rounds in 1usize..4,
    ) {
        // The ring and mutex engines must produce bitwise-identical results
        // and identical meter snapshots for the same randomized collective
        // schedule — the cross-backend contract the CI gate relies on.
        let contributions: Vec<Vec<f32>> = (0..world)
            .map(|r| {
                let mut state = (seed ^ ((r as u64) << 17)) | 1;
                (0..len)
                    .map(|_| {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        (state % 2048) as f32 / 97.0 - 10.0
                    })
                    .collect()
            })
            .collect();
        let mut per_backend = Vec::new();
        for backend in [ThreadCommBackend::Ring, ThreadCommBackend::Mutex] {
            let opts = CommOptions { backend, ..CommOptions::default() };
            let outputs = ThreadComm::run_with(world, opts, |comm| {
                let mut bits = Vec::new();
                for _ in 0..rounds {
                    let mut buf = contributions[comm.rank()].clone();
                    comm.allreduce(&mut buf, ReduceOp::Avg);
                    bits.extend(buf.iter().map(|v| v.to_bits()));
                    let gathered = comm.allgather(&buf[..1]);
                    bits.extend(gathered.iter().map(|v| v.to_bits()));
                    let shard = comm.reduce_scatter(&buf);
                    bits.extend(shard.iter().map(|v| v.to_bits()));
                    comm.barrier();
                }
                (bits, comm.meter_snapshot())
            });
            per_backend.push(outputs);
        }
        let (ring_runs, mutex_runs) = (&per_backend[0], &per_backend[1]);
        for (rank, (ring, mutex)) in ring_runs.iter().zip(mutex_runs).enumerate() {
            prop_assert_eq!(&ring.0, &mutex.0, "rank {} results diverge across backends", rank);
        }
        prop_assert_eq!(
            &ring_runs[0].1,
            &mutex_runs[0].1,
            "meter snapshots diverge across backends"
        );
    }
}
