//! Job specifications and status reporting.

use kaisa_core::KfacConfig;
use kaisa_optim::LrSchedule;

/// Opaque identifier of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub(crate) u64);

impl JobId {
    /// The raw numeric id (submission order, starting at 0).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// A scheduled pause point: the job checkpoints after completing
/// `at_step` steps and resumes — possibly at a different world size —
/// once the scheduler re-admits it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResizePoint {
    /// Global step count at which to pause (steps completed before the
    /// pause; must be `< total_steps`).
    pub at_step: u64,
    /// World size to resume at. Equal to the current world for a plain
    /// pause/resume without resizing.
    pub world: usize,
}

/// Everything needed to run one training job deterministically: model
/// architecture, synthetic dataset, optimizer, optional K-FAC
/// configuration, world size, and the pause/resize plan.
///
/// All randomness is seeded, so any two executions of the same spec — on
/// any rank layout the scheduler picks — produce bitwise-identical
/// trajectories.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human-readable job name (logs and status only).
    pub name: String,
    /// MLP layer widths, e.g. `[8, 16, 4]`.
    pub layer_sizes: Vec<usize>,
    /// Synthetic Gaussian-blob dataset size.
    pub dataset_samples: usize,
    /// Dataset noise level.
    pub dataset_noise: f32,
    /// Dataset generation seed.
    pub data_seed: u64,
    /// Model weight initialization seed (identical on every rank).
    pub model_seed: u64,
    /// Shard-sampler seed.
    pub sampler_seed: u64,
    /// Per-rank micro-batch size.
    pub local_batch: usize,
    /// Gradient-accumulation micro-steps per optimizer step.
    pub grad_accum: usize,
    /// Learning-rate schedule, indexed by global step.
    pub schedule: LrSchedule,
    /// SGD momentum (0 for plain SGD).
    pub momentum: f32,
    /// K-FAC preconditioning; `None` trains first-order only.
    pub kfac: Option<KfacConfig>,
    /// Initial world size (rank threads claimed from the pool).
    pub world: usize,
    /// Total optimizer steps to run.
    pub total_steps: u64,
    /// Pause/resize plan, strictly increasing in `at_step`.
    pub resizes: Vec<ResizePoint>,
}

impl JobSpec {
    /// A small default job: 2-layer MLP on Gaussian blobs, plain SGD,
    /// no K-FAC, world 1, 8 steps, no pauses. Override fields as needed.
    pub fn small(name: &str) -> Self {
        JobSpec {
            name: name.to_string(),
            layer_sizes: vec![8, 16, 4],
            dataset_samples: 256,
            dataset_noise: 0.3,
            data_seed: 1,
            model_seed: 3,
            sampler_seed: 0,
            local_batch: 8,
            grad_accum: 1,
            schedule: LrSchedule::Constant { lr: 0.2 },
            momentum: 0.0,
            kfac: None,
            world: 1,
            total_steps: 8,
            resizes: Vec::new(),
        }
    }

    /// The world size in effect for the segment starting at `step`.
    pub fn world_at(&self, step: u64) -> usize {
        let mut world = self.world;
        for r in &self.resizes {
            if r.at_step <= step {
                world = r.world;
            }
        }
        world
    }

    /// Every distinct world size the job will run at, in order of use.
    pub fn worlds(&self) -> Vec<usize> {
        let mut worlds = vec![self.world];
        for r in &self.resizes {
            if r.world != *worlds.last().expect("non-empty") {
                worlds.push(r.world);
            }
        }
        worlds
    }

    /// Validate structural invariants; returns a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.layer_sizes.len() < 2 {
            return Err("layer_sizes needs at least input and output widths".to_string());
        }
        if self.total_steps == 0 {
            return Err("total_steps must be positive".to_string());
        }
        if self.local_batch == 0 || self.grad_accum == 0 {
            return Err("local_batch and grad_accum must be positive".to_string());
        }
        let mut prev: Option<u64> = None;
        for r in &self.resizes {
            if r.world == 0 {
                return Err(format!("resize at step {} targets world 0", r.at_step));
            }
            if r.at_step == 0 || r.at_step >= self.total_steps {
                return Err(format!("resize step {} outside (0, {})", r.at_step, self.total_steps));
            }
            if prev.is_some_and(|p| r.at_step <= p) {
                return Err("resize steps must be strictly increasing".to_string());
            }
            prev = Some(r.at_step);
        }
        for &world in &self.worlds() {
            if world == 0 {
                return Err("world must be positive".to_string());
            }
            // Every rank needs at least one full step's worth of samples.
            let per_rank = self.dataset_samples / world;
            if per_rank < self.local_batch * self.grad_accum {
                return Err(format!(
                    "dataset shard ({per_rank} samples at world {world}) smaller than one \
                     step's batch ({})",
                    self.local_batch * self.grad_accum
                ));
            }
        }
        if let Some(kfac) = &self.kfac {
            // Panics on an invalid K-FAC configuration (its contract);
            // better at submit time than inside a pool rank thread.
            kfac.validate();
        }
        Ok(())
    }
}

/// Lifecycle state of a job inside the manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for admission (initial submission or paused-for-resize).
    Queued,
    /// A segment is currently executing on pool ranks.
    Running,
    /// All `total_steps` finished; final checkpoint retained.
    Completed,
}

impl JobState {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
        }
    }
}

/// A point-in-time view of one job.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// The job's identifier.
    pub id: JobId,
    /// The job's name.
    pub name: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Optimizer steps completed so far.
    pub step: u64,
    /// Total steps the job will run.
    pub total_steps: u64,
    /// World size of the current/next segment.
    pub world: usize,
    /// Bytes this job counts against the pool budget: the modeled
    /// per-rank K-FAC footprint, raised to the measured live footprint
    /// when the job's own `MemoryMeter` reports more.
    pub resident_bytes: usize,
    /// Mean training loss of each completed segment.
    pub segment_losses: Vec<f32>,
    /// Size of the job's latest checkpoint, if one exists.
    pub checkpoint_bytes: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_schedule_follows_resizes() {
        let mut spec = JobSpec::small("w");
        spec.world = 4;
        spec.total_steps = 10;
        spec.resizes =
            vec![ResizePoint { at_step: 3, world: 2 }, ResizePoint { at_step: 6, world: 8 }];
        assert_eq!(spec.world_at(0), 4);
        assert_eq!(spec.world_at(2), 4);
        assert_eq!(spec.world_at(3), 2);
        assert_eq!(spec.world_at(5), 2);
        assert_eq!(spec.world_at(6), 8);
        assert_eq!(spec.worlds(), vec![4, 2, 8]);
        assert_eq!(spec.validate(), Ok(()));
    }

    #[test]
    fn validation_catches_bad_plans() {
        let mut spec = JobSpec::small("v");
        spec.total_steps = 4;
        spec.resizes = vec![ResizePoint { at_step: 4, world: 1 }];
        assert!(spec.validate().is_err(), "resize at total_steps is invalid");
        spec.resizes =
            vec![ResizePoint { at_step: 2, world: 1 }, ResizePoint { at_step: 2, world: 2 }];
        assert!(spec.validate().is_err(), "duplicate resize steps");
        spec.resizes = vec![ResizePoint { at_step: 2, world: 0 }];
        assert!(spec.validate().is_err(), "world 0");
        spec.resizes.clear();
        spec.layer_sizes = vec![8];
        assert!(spec.validate().is_err(), "single-layer MLP");
    }

    #[test]
    fn small_spec_validates() {
        assert_eq!(JobSpec::small("ok").validate(), Ok(()));
    }
}
