//! # kaisa-serve
//!
//! A multi-job K-FAC training **service** over one shared rank pool:
//! several concurrent training jobs, each with its own `Kfac`
//! preconditioner state, scheduled through memory-budget admission
//! control, pausable via byte-level checkpoints, and **elastically
//! resizable** — a job checkpointed at world size `W` restores at world
//! `W′`, re-running LPT factor placement and strategy resolution for the
//! new world and re-sharding its packed factor state, with a bitwise
//! guarantee: the resumed trajectory equals a fresh run that resized
//! in-process at the same step.
//!
//! The pieces:
//!
//! * [`RankPool`](kaisa_comm::RankPool) (in `kaisa-comm`) — a counting
//!   semaphore over rank threads; every job world is carved out of it.
//! * [`JobManager`] — sharded-lock job map, FIFO-with-backfill scheduler,
//!   admission driven by the analytic memory model *and* the live
//!   measured `MemoryMeter` of running jobs.
//! * [`JobCheckpoint`] — the stable byte format for paused jobs: flat
//!   weights, SGD velocity, and the full `KfacCheckpoint` (square factor
//!   running averages, cached eigendecompositions, step counters).
//!
//! ```no_run
//! use kaisa_serve::{JobManager, JobSpec, ResizePoint, ServeConfig};
//!
//! let mgr = JobManager::new(ServeConfig::default());
//! let mut spec = JobSpec::small("demo");
//! spec.world = 4;
//! spec.total_steps = 12;
//! // Pause after 6 steps, resume on 2 ranks.
//! spec.resizes = vec![ResizePoint { at_step: 6, world: 2 }];
//! let id = mgr.submit(spec).unwrap();
//! mgr.drain();
//! assert_eq!(mgr.status(id).unwrap().step, 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod job;
mod manager;

pub use checkpoint::{CheckpointError, JobCheckpoint};
pub use job::{JobId, JobSpec, JobState, JobStatus, ResizePoint};
pub use manager::{modeled_kfac_bytes, AdmissionError, JobManager, ServeConfig, ServeEvent};
