//! The multi-job K-FAC service: admission control, scheduling, and
//! elastic segment execution.
//!
//! # Architecture
//!
//! A [`JobManager`] owns three pieces of shared state:
//!
//! * a [`RankPool`] — the machine's rank-thread capacity, shared by every
//!   job's communicator world;
//! * a **sharded-lock job map** — `N` independent `RwLock<HashMap>` shards
//!   keyed by [`JobId`], so status queries and per-rank live-memory
//!   updates on different jobs never contend on one lock;
//! * a [`MemoryBudget`] — the pool-wide cap on modeled per-rank K-FAC
//!   state, driving admission.
//!
//! # Admission control
//!
//! At submission the manager models the job's per-rank K-FAC footprint
//! with the analytic simulator (`kaisa_sim`'s `kfac_overhead_sharded()`,
//! the sharded-factors residency the paper's Table 5 models). A job whose
//! modeled footprint can never fit the budget is **rejected** outright; a
//! job that merely doesn't fit *now* is **queued** FIFO and admitted when
//! running jobs complete or pause. While a job runs, its own live
//! [`MemoryMeter`](kaisa_core::MemoryMeter) reading (max across its
//! ranks) replaces the model whenever it is larger, so admission tracks
//! reality rather than the estimate.
//!
//! # Elastic resizing
//!
//! A job's [`ResizePoint`]s split it into segments. Each segment claims
//! `world` ranks from the pool, rebuilds the model, **restores** the
//! packed factor/eigen state from the previous segment's byte checkpoint
//! (re-running LPT placement and strategy resolution at the new world
//! size), trains to the next pause point, flushes the preconditioner
//! quiescent, and writes a fresh checkpoint. Restore is bitwise
//! transparent: the gated invariant is that pause → checkpoint → resume
//! at a different world equals a fresh run that resized in-process at the
//! same step, bit for bit, on every rank.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, RwLock};
use std::time::Instant;

use kaisa_comm::{CommOptions, Communicator, RankPool, ReduceOp};
use kaisa_core::{effective_worker_frac, DistStrategy, Kfac, MemoryBudget};
use kaisa_data::{Dataset, GaussianBlobs, ShardSampler};
use kaisa_nn::{models::Mlp, Model};
use kaisa_optim::{Optimizer, Sgd};
use kaisa_sim::{ClusterSpec, LayerShape, ModelInventory, SimParams, Simulator};
use kaisa_tensor::{Precision, Rng};
use kaisa_trainer::run_step;

use crate::checkpoint::JobCheckpoint;
use crate::job::{JobId, JobSpec, JobState, JobStatus};

/// Configuration of a serve pool.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Rank threads available to all jobs combined.
    pub pool_ranks: usize,
    /// Pool-wide budget on per-rank K-FAC state, in bytes. Admission
    /// queues jobs whose modeled `kfac_overhead_sharded()` would push the
    /// live total past this; jobs that could never fit are rejected.
    pub pool_budget_bytes: usize,
    /// Number of independent lock shards in the job map.
    pub map_shards: usize,
    /// Communicator options for every job world the pool constructs.
    pub comm: CommOptions,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            pool_ranks: 8,
            pool_budget_bytes: 256 << 20,
            map_shards: 8,
            comm: CommOptions::default(),
        }
    }
}

/// Why a submission was refused outright (queueing would never help).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The modeled per-rank K-FAC footprint exceeds the whole pool
    /// budget, so the job could never run even on an empty pool.
    FootprintExceedsBudget {
        /// Modeled bytes for the job's largest-footprint world.
        modeled: usize,
        /// The configured pool budget.
        budget: usize,
    },
    /// Some segment wants more ranks than the pool owns.
    WorldExceedsPool {
        /// The offending world size.
        world: usize,
        /// The pool's rank capacity.
        capacity: usize,
    },
    /// The spec failed structural validation.
    InvalidSpec(String),
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::FootprintExceedsBudget { modeled, budget } => {
                write!(f, "modeled K-FAC footprint {modeled} B exceeds the pool budget {budget} B")
            }
            AdmissionError::WorldExceedsPool { world, capacity } => {
                write!(f, "job world {world} exceeds pool capacity {capacity}")
            }
            AdmissionError::InvalidSpec(why) => write!(f, "invalid job spec: {why}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// A scheduling event, timestamped in seconds since the manager was
/// created. The event log is append-only and totally ordered: an event
/// recorded before another appears earlier.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeEvent {
    /// A job passed admission checks and entered the queue.
    Submitted {
        /// The job.
        job: JobId,
        /// Seconds since manager creation.
        at: f64,
    },
    /// The scheduler admitted a segment and claimed pool ranks for it.
    Admitted {
        /// The job.
        job: JobId,
        /// The step the segment starts at.
        step: u64,
        /// The segment's world size.
        world: usize,
        /// Seconds since manager creation.
        at: f64,
    },
    /// A segment reached a pause point and checkpointed.
    Paused {
        /// The job.
        job: JobId,
        /// Steps completed at the pause.
        step: u64,
        /// Seconds since manager creation.
        at: f64,
    },
    /// A pause changed the job's world size for the next segment.
    Resized {
        /// The job.
        job: JobId,
        /// Steps completed at the resize.
        step: u64,
        /// World size before the pause.
        from_world: usize,
        /// World size after restore.
        to_world: usize,
        /// Seconds since manager creation.
        at: f64,
    },
    /// A job finished all its steps.
    Completed {
        /// The job.
        job: JobId,
        /// Total steps completed.
        step: u64,
        /// Seconds since manager creation.
        at: f64,
    },
}

impl ServeEvent {
    /// The job the event concerns.
    pub fn job(&self) -> JobId {
        match self {
            ServeEvent::Submitted { job, .. }
            | ServeEvent::Admitted { job, .. }
            | ServeEvent::Paused { job, .. }
            | ServeEvent::Resized { job, .. }
            | ServeEvent::Completed { job, .. } => *job,
        }
    }

    /// Seconds since manager creation when the event was recorded.
    pub fn at(&self) -> f64 {
        match self {
            ServeEvent::Submitted { at, .. }
            | ServeEvent::Admitted { at, .. }
            | ServeEvent::Paused { at, .. }
            | ServeEvent::Resized { at, .. }
            | ServeEvent::Completed { at, .. } => *at,
        }
    }
}

struct JobEntry {
    spec: JobSpec,
    state: JobState,
    /// Steps completed.
    step: u64,
    /// World of the current/next segment.
    world: usize,
    /// Modeled per-rank K-FAC bytes at `world` — the admission claim.
    claim: usize,
    /// Live `MemoryMeter` reading (max across ranks), once measured.
    measured: Option<usize>,
    /// Latest checkpoint bytes (present after any pause or completion).
    checkpoint: Option<Vec<u8>>,
    /// Mean train loss per completed segment.
    segment_losses: Vec<f32>,
}

struct Sched {
    queue: VecDeque<JobId>,
    running: usize,
}

/// The multi-job K-FAC training service. See the module docs for the
/// architecture.
pub struct JobManager {
    cfg: ServeConfig,
    pool: RankPool,
    budget: MemoryBudget,
    shards: Vec<RwLock<HashMap<u64, JobEntry>>>,
    sched: Mutex<Sched>,
    wake: Condvar,
    events: Mutex<Vec<ServeEvent>>,
    next_id: AtomicU64,
    epoch: Instant,
}

impl JobManager {
    /// Build a manager over a fresh rank pool.
    pub fn new(cfg: ServeConfig) -> Self {
        assert!(cfg.map_shards >= 1, "job map needs at least one shard");
        let shards = (0..cfg.map_shards).map(|_| RwLock::new(HashMap::new())).collect();
        JobManager {
            pool: RankPool::with_options(cfg.pool_ranks, cfg.comm.clone()),
            budget: MemoryBudget::new(cfg.pool_budget_bytes),
            shards,
            sched: Mutex::new(Sched { queue: VecDeque::new(), running: 0 }),
            wake: Condvar::new(),
            events: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(0),
            epoch: Instant::now(),
            cfg,
        }
    }

    /// The configuration the manager was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The pool-wide K-FAC memory budget.
    pub fn budget(&self) -> MemoryBudget {
        self.budget
    }

    /// The shared rank pool.
    pub fn pool(&self) -> &RankPool {
        &self.pool
    }

    /// Submit a job. Returns its id, or an [`AdmissionError`] when the
    /// job is structurally invalid or could never run on this pool —
    /// rejection happens here; "doesn't fit *right now*" only queues.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, AdmissionError> {
        spec.validate().map_err(AdmissionError::InvalidSpec)?;
        for world in spec.worlds() {
            if world > self.pool.capacity() {
                return Err(AdmissionError::WorldExceedsPool {
                    world,
                    capacity: self.pool.capacity(),
                });
            }
            let modeled = modeled_kfac_bytes(&spec, world);
            if !self.budget.would_ever_fit(modeled) {
                return Err(AdmissionError::FootprintExceedsBudget {
                    modeled,
                    budget: self.budget.limit(),
                });
            }
        }
        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let claim = modeled_kfac_bytes(&spec, spec.world);
        let entry = JobEntry {
            world: spec.world,
            spec,
            state: JobState::Queued,
            step: 0,
            claim,
            measured: None,
            checkpoint: None,
            segment_losses: Vec::new(),
        };
        self.shard(id).write().expect("job map poisoned").insert(id.0, entry);
        self.record(ServeEvent::Submitted { job: id, at: self.now() });
        let mut sched = self.sched.lock().expect("scheduler poisoned");
        sched.queue.push_back(id);
        drop(sched);
        self.wake.notify_all();
        Ok(id)
    }

    /// Run the scheduler until every submitted job has completed. Jobs
    /// execute concurrently up to the rank-pool and memory-budget limits;
    /// queued jobs are admitted FIFO with backfilling (a later job that
    /// fits may start while an earlier, larger one waits).
    pub fn drain(&self) {
        std::thread::scope(|scope| loop {
            let mut sched = self.sched.lock().expect("scheduler poisoned");
            let pick =
                sched.queue.iter().position(|&id| self.admissible(id, self.live_resident_bytes()));
            match pick {
                Some(i) => {
                    let id = sched.queue.remove(i).expect("index in range");
                    sched.running += 1;
                    drop(sched);
                    let (step, world) = {
                        let mut shard = self.shard(id).write().expect("job map poisoned");
                        let entry = shard.get_mut(&id.0).expect("queued job in map");
                        entry.state = JobState::Running;
                        (entry.step, entry.world)
                    };
                    self.record(ServeEvent::Admitted { job: id, step, world, at: self.now() });
                    scope.spawn(move || {
                        self.run_segment(id);
                        let mut sched = self.sched.lock().expect("scheduler poisoned");
                        sched.running -= 1;
                        drop(sched);
                        self.wake.notify_all();
                    });
                }
                None if sched.running > 0 => {
                    let _unused = self.wake.wait(sched).expect("scheduler poisoned");
                }
                None if sched.queue.is_empty() => break,
                None => unreachable!(
                    "queued jobs exist, nothing is running, yet none is admissible — \
                     submit-time reject checks should make this impossible"
                ),
            }
        });
    }

    /// Submit-then-drain convenience for a single job.
    pub fn run_to_completion(&self, spec: JobSpec) -> Result<JobId, AdmissionError> {
        let id = self.submit(spec)?;
        self.drain();
        Ok(id)
    }

    /// Point-in-time status of one job.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let shard = self.shard(id).read().expect("job map poisoned");
        shard.get(&id.0).map(|e| JobStatus {
            id,
            name: e.spec.name.clone(),
            state: e.state,
            step: e.step,
            total_steps: e.spec.total_steps,
            world: e.world,
            resident_bytes: e.claim.max(e.measured.unwrap_or(0)),
            segment_losses: e.segment_losses.clone(),
            checkpoint_bytes: e.checkpoint.as_ref().map(Vec::len),
        })
    }

    /// Status of every job, ordered by id.
    pub fn statuses(&self) -> Vec<JobStatus> {
        let mut ids: Vec<JobId> = Vec::new();
        for shard in &self.shards {
            ids.extend(shard.read().expect("job map poisoned").keys().map(|&k| JobId(k)));
        }
        ids.sort();
        ids.into_iter().filter_map(|id| self.status(id)).collect()
    }

    /// The latest checkpoint bytes of a job (after any pause, and always
    /// after completion).
    pub fn checkpoint_bytes(&self, id: JobId) -> Option<Vec<u8>> {
        self.shard(id).read().expect("job map poisoned").get(&id.0)?.checkpoint.clone()
    }

    /// Decode the final model parameters from a job's latest checkpoint.
    pub fn final_params(&self, id: JobId) -> Option<Vec<f32>> {
        let bytes = self.checkpoint_bytes(id)?;
        Some(JobCheckpoint::from_bytes(&bytes).expect("stored checkpoint parses").params)
    }

    /// The append-only scheduling event log.
    pub fn events(&self) -> Vec<ServeEvent> {
        self.events.lock().expect("event log poisoned").clone()
    }

    /// Sum of resident-byte claims of currently running jobs.
    pub fn live_resident_bytes(&self) -> usize {
        let mut total = 0usize;
        for shard in &self.shards {
            for e in shard.read().expect("job map poisoned").values() {
                if e.state == JobState::Running {
                    total = total.saturating_add(e.claim.max(e.measured.unwrap_or(0)));
                }
            }
        }
        total
    }

    fn shard(&self, id: JobId) -> &RwLock<HashMap<u64, JobEntry>> {
        &self.shards[(id.0 as usize) % self.shards.len()]
    }

    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    fn record(&self, event: ServeEvent) {
        self.events.lock().expect("event log poisoned").push(event);
    }

    fn admissible(&self, id: JobId, live: usize) -> bool {
        let shard = self.shard(id).read().expect("job map poisoned");
        let entry = shard.get(&id.0).expect("queued job in map");
        self.budget.admits(live, entry.claim)
    }

    /// Rank-0 threads report their job's live measured footprint here
    /// while the segment runs, so admission sees reality, not the model.
    fn record_measured(&self, id: JobId, bytes: usize) {
        let mut shard = self.shard(id).write().expect("job map poisoned");
        let entry = shard.get_mut(&id.0).expect("running job in map");
        entry.measured = Some(entry.measured.unwrap_or(0).max(bytes));
    }

    /// Execute one segment of a job: restore (or build fresh), train to
    /// the next pause point or completion, flush the preconditioner
    /// quiescent, checkpoint, and either finish or re-queue.
    fn run_segment(&self, id: JobId) {
        let (spec, start_step, world, ckpt_bytes) = {
            let shard = self.shard(id).read().expect("job map poisoned");
            let e = shard.get(&id.0).expect("running job in map");
            (e.spec.clone(), e.step, e.world, e.checkpoint.clone())
        };
        let target = spec
            .resizes
            .iter()
            .map(|r| r.at_step)
            .find(|&s| s > start_step)
            .unwrap_or(spec.total_steps)
            .min(spec.total_steps);
        let kfac_async = spec.kfac.as_ref().is_some_and(|k| k.async_runtime);
        let features = spec.layer_sizes[0];
        let classes = *spec.layer_sizes.last().expect("validated non-empty");

        let outcomes = self.pool.run_job(world, |comm| {
            let rank = comm.rank();
            let mut model = Mlp::new(&spec.layer_sizes, &mut Rng::seed_from_u64(spec.model_seed));
            let mut optimizer = Sgd::with_momentum(spec.momentum);
            let data = GaussianBlobs::generate(
                spec.dataset_samples,
                features,
                classes,
                spec.dataset_noise,
                spec.data_seed,
            );
            let mut kfac = match &ckpt_bytes {
                Some(bytes) => {
                    let ckpt = JobCheckpoint::from_bytes(bytes).expect("stored checkpoint parses");
                    assert_eq!(ckpt.step, start_step, "checkpoint step drifted from job entry");
                    model.set_params_flat(&ckpt.params);
                    optimizer.set_velocity(ckpt.velocity.clone());
                    ckpt.kfac.as_ref().map(|kc| {
                        let cfg = spec.kfac.clone().expect("kfac state implies kfac config");
                        Kfac::restore(cfg, &mut model, comm, kc)
                    })
                }
                None => spec.kfac.clone().map(|kc| Kfac::new(kc, &mut model, comm)),
            };

            // Report the live measured footprint (max across ranks) so
            // concurrent admission decisions track reality.
            let mut resident =
                [kfac.as_ref().map_or(0, |k| k.memory_meter().current_total()) as f32];
            comm.allreduce(&mut resident, ReduceOp::Max);
            if rank == 0 {
                self.record_measured(id, resident[0] as usize);
            }

            let sampler = ShardSampler::new(
                data.len(),
                world,
                rank,
                spec.local_batch * spec.grad_accum,
                spec.sampler_seed,
            );
            let per_epoch = sampler.batches_per_epoch();
            let mut cached_epoch = usize::MAX;
            let mut batches: Vec<Vec<usize>> = Vec::new();
            let mut loss_sum = 0.0f64;
            let mut micro = 0usize;
            for step in start_step..target {
                let s = step as usize;
                if s / per_epoch != cached_epoch {
                    cached_epoch = s / per_epoch;
                    batches = sampler.epoch_batches(cached_epoch);
                }
                let stats = run_step(
                    comm,
                    &mut model,
                    &mut optimizer as &mut dyn Optimizer,
                    kfac.as_mut(),
                    kfac_async,
                    &data,
                    &batches[s % per_epoch],
                    spec.local_batch,
                    spec.grad_accum,
                    spec.schedule.lr_at(s),
                );
                loss_sum += stats.loss_sum;
                micro += stats.micro_batches;
            }

            // Pause point: drain any in-flight window so the checkpoint
            // sees a quiescent preconditioner.
            if let Some(k) = kfac.as_mut() {
                k.flush(comm);
            }
            let measured = kfac.as_ref().map_or(0, |k| k.memory_meter().current_total());
            let ckpt = JobCheckpoint {
                step: target,
                params: model.params_flat(),
                velocity: optimizer.velocity().to_vec(),
                kfac: kfac.as_mut().map(|k| k.checkpoint_state(comm)),
            };
            (ckpt.to_bytes(), measured, loss_sum, micro)
        });

        // Service invariant: every rank serializes the identical
        // checkpoint — weights are replicated and K-FAC state is gathered
        // to all ranks before encoding.
        let bytes = outcomes[0].0.clone();
        for (r, o) in outcomes.iter().enumerate().skip(1) {
            assert_eq!(o.0, bytes, "job {id}: rank {r} checkpoint diverged from rank 0");
        }
        let measured = outcomes.iter().map(|o| o.1).max().unwrap_or(0);
        let loss_sum: f64 = outcomes.iter().map(|o| o.2).sum();
        let micro: usize = outcomes.iter().map(|o| o.3).sum();
        let segment_loss = (loss_sum / micro.max(1) as f64) as f32;

        let next_world = spec.world_at(target);
        let finished = target >= spec.total_steps;
        if finished {
            self.record(ServeEvent::Completed { job: id, step: target, at: self.now() });
        } else {
            self.record(ServeEvent::Paused { job: id, step: target, at: self.now() });
            if next_world != world {
                self.record(ServeEvent::Resized {
                    job: id,
                    step: target,
                    from_world: world,
                    to_world: next_world,
                    at: self.now(),
                });
            }
        }
        {
            let mut shard = self.shard(id).write().expect("job map poisoned");
            let entry = shard.get_mut(&id.0).expect("running job in map");
            entry.step = target;
            entry.world = next_world;
            entry.claim = modeled_kfac_bytes(&spec, next_world);
            entry.measured = Some(measured.max(entry.measured.unwrap_or(0)));
            entry.checkpoint = Some(bytes);
            entry.segment_losses.push(segment_loss);
            entry.state = if finished { JobState::Completed } else { JobState::Queued };
        }
        if !finished {
            let mut sched = self.sched.lock().expect("scheduler poisoned");
            sched.queue.push_back(id);
            drop(sched);
            self.wake.notify_all();
        }
    }
}

/// Model a job's per-rank K-FAC footprint at a given world size: the
/// analytic sharded-residency overhead (`factors_sharded + eig_cache`)
/// from the paper's memory model, evaluated over the job's actual layer
/// shapes and K-FAC configuration.
pub fn modeled_kfac_bytes(spec: &JobSpec, world: usize) -> usize {
    let Some(kc) = &spec.kfac else { return 0 };
    let layers = spec
        .layer_sizes
        .windows(2)
        .enumerate()
        .map(|(i, pair)| LayerShape {
            name: format!("fc{i}"),
            a_dim: pair[0] + 1,
            g_dim: pair[1],
            spatial: 1,
            params: (pair[0] + 1) * pair[1],
        })
        .collect();
    let inventory = ModelInventory {
        name: "serve-mlp",
        layers,
        extra_params: 0,
        activation_bytes_per_sample: 4 * spec.layer_sizes.iter().sum::<usize>(),
        extra_fwd_flops_per_sample: 0.0,
    };
    let frac = effective_worker_frac(kc.strategy, kc.grad_worker_frac, world);
    let mut params = SimParams::baseline(inventory, ClusterSpec::frontera(world), spec.local_batch)
        .with_kfac(frac, kc.factor_update_freq, kc.inv_update_freq);
    if kc.strategy == Some(DistStrategy::LocalOpt) {
        params = params.with_local_factors();
    }
    params.grad_accum = spec.grad_accum;
    params.half_factors = kc.precision == Precision::Fp16;
    Simulator::new(params).memory_breakdown().kfac_overhead_sharded()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ResizePoint;
    use kaisa_core::KfacConfig;

    fn kfac_spec(name: &str, world: usize, steps: u64) -> JobSpec {
        let mut spec = JobSpec::small(name);
        spec.world = world;
        spec.total_steps = steps;
        spec.kfac = Some(
            KfacConfig::builder()
                .grad_worker_frac(0.5)
                .factor_update_freq(2)
                .inv_update_freq(4)
                .sharded_factors(true)
                .build(),
        );
        spec
    }

    #[test]
    fn single_job_runs_to_completion() {
        let mgr = JobManager::new(ServeConfig::default());
        let id = mgr.run_to_completion(kfac_spec("solo", 4, 6)).unwrap();
        let status = mgr.status(id).unwrap();
        assert_eq!(status.state, JobState::Completed);
        assert_eq!(status.step, 6);
        assert_eq!(status.segment_losses.len(), 1);
        assert!(status.checkpoint_bytes.unwrap() > 0);
        assert!(status.resident_bytes > 0, "kfac job must claim memory");
        let params = mgr.final_params(id).unwrap();
        assert!(!params.is_empty());
        assert!(params.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn pause_resume_same_world_matches_uninterrupted_run() {
        let paused = JobManager::new(ServeConfig::default());
        let mut spec = kfac_spec("paused", 2, 8);
        spec.resizes = vec![ResizePoint { at_step: 3, world: 2 }];
        let a = paused.run_to_completion(spec).unwrap();

        let straight = JobManager::new(ServeConfig::default());
        let b = straight.run_to_completion(kfac_spec("straight", 2, 8)).unwrap();

        let pa = paused.final_params(a).unwrap();
        let pb = straight.final_params(b).unwrap();
        assert_eq!(pa.len(), pb.len());
        for (i, (x, y)) in pa.iter().zip(&pb).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "param {i} diverged across pause/resume");
        }
        // The paused run recorded two segments and a pause event.
        assert_eq!(paused.status(a).unwrap().segment_losses.len(), 2);
        assert!(paused.events().iter().any(|e| matches!(e, ServeEvent::Paused { step: 3, .. })));
    }

    #[test]
    fn elastic_resize_changes_world_between_segments() {
        let mgr = JobManager::new(ServeConfig::default());
        let mut spec = kfac_spec("elastic", 4, 8);
        spec.resizes = vec![ResizePoint { at_step: 4, world: 2 }];
        let id = mgr.run_to_completion(spec).unwrap();
        assert_eq!(mgr.status(id).unwrap().state, JobState::Completed);
        assert_eq!(mgr.status(id).unwrap().world, 2);
        assert!(mgr
            .events()
            .iter()
            .any(|e| matches!(e, ServeEvent::Resized { from_world: 4, to_world: 2, step: 4, .. })));
    }

    #[test]
    fn oversized_footprint_is_rejected_outright() {
        let cfg = ServeConfig { pool_budget_bytes: 16, ..ServeConfig::default() };
        let mgr = JobManager::new(cfg);
        let err = mgr.submit(kfac_spec("huge", 2, 4)).unwrap_err();
        assert!(matches!(err, AdmissionError::FootprintExceedsBudget { .. }), "{err}");
        // First-order jobs model zero K-FAC bytes and always pass.
        assert!(mgr.submit(JobSpec::small("sgd-only")).is_ok());
    }

    #[test]
    fn oversized_world_is_rejected() {
        let mgr = JobManager::new(ServeConfig { pool_ranks: 2, ..ServeConfig::default() });
        let err = mgr.submit(kfac_spec("wide", 4, 4)).unwrap_err();
        assert!(matches!(err, AdmissionError::WorldExceedsPool { world: 4, capacity: 2 }));
    }

    #[test]
    fn budget_queues_second_job_until_first_completes() {
        // Budget fits exactly one of the two identical jobs at a time.
        let one_job = modeled_kfac_bytes(&kfac_spec("probe", 2, 4), 2);
        assert!(one_job > 0);
        let cfg = ServeConfig {
            pool_ranks: 8,
            pool_budget_bytes: one_job + one_job / 2,
            ..ServeConfig::default()
        };
        let mgr = JobManager::new(cfg);
        let a = mgr.submit(kfac_spec("first", 2, 4)).unwrap();
        let b = mgr.submit(kfac_spec("second", 2, 4)).unwrap();
        mgr.drain();
        assert_eq!(mgr.status(a).unwrap().state, JobState::Completed);
        assert_eq!(mgr.status(b).unwrap().state, JobState::Completed);
        // Provable queueing: B's admission appears after A's completion in
        // the totally-ordered event log.
        let events = mgr.events();
        let a_done = events
            .iter()
            .position(|e| matches!(e, ServeEvent::Completed { job, .. } if *job == a))
            .expect("A completed");
        let b_admitted = events
            .iter()
            .position(|e| matches!(e, ServeEvent::Admitted { job, .. } if *job == b))
            .expect("B admitted");
        assert!(
            b_admitted > a_done,
            "B admitted at event {b_admitted}, before A completed at {a_done}"
        );
    }

    #[test]
    fn independent_jobs_run_concurrently_within_budget() {
        let mgr = JobManager::new(ServeConfig::default());
        let a = mgr.submit(kfac_spec("a", 2, 4)).unwrap();
        let b = mgr.submit(kfac_spec("b", 2, 4)).unwrap();
        let c = mgr.submit(JobSpec::small("c")).unwrap();
        mgr.drain();
        for id in [a, b, c] {
            assert_eq!(mgr.status(id).unwrap().state, JobState::Completed, "{id}");
        }
        assert_eq!(mgr.statuses().len(), 3);
        assert_eq!(mgr.live_resident_bytes(), 0, "nothing running after drain");
    }

    #[test]
    fn modeled_footprint_grows_with_worker_fraction() {
        let mem = {
            let mut s = kfac_spec("m", 4, 4);
            s.kfac.as_mut().unwrap().grad_worker_frac = 0.25;
            modeled_kfac_bytes(&s, 4)
        };
        let comm = {
            let mut s = kfac_spec("c", 4, 4);
            s.kfac.as_mut().unwrap().grad_worker_frac = 1.0;
            modeled_kfac_bytes(&s, 4)
        };
        assert!(
            comm > mem,
            "COMM-OPT ({comm} B) must model more per-rank state than MEM-OPT ({mem} B)"
        );
        let mut sgd = JobSpec::small("none");
        sgd.kfac = None;
        assert_eq!(modeled_kfac_bytes(&sgd, 4), 0);
    }
}
