//! Byte-level job checkpoint serialization.
//!
//! A [`JobCheckpoint`] captures everything a paused training job needs to
//! resume **on a different world size**: the flat model parameters, the
//! first-order optimizer's momentum velocity, the K-FAC preconditioner
//! state (running factor averages stored square, cached decompositions,
//! the optimizer step counter — see `kaisa_core::KfacCheckpoint`), and the
//! global step the job paused at. Data-shard progress needs no state at
//! all: the `ShardSampler` is a pure function of `(world, rank, seed,
//! epoch)`, so the resumed world re-derives its batches from the step
//! index alone.
//!
//! The encoding is a deliberately simple little-endian format with no
//! external dependencies:
//!
//! ```text
//! magic    8 bytes  "KAISAJOB"
//! version  u32      currently 1
//! step     u64
//! params   u64 count, then count × u32   (f32::to_bits, LE)
//! velocity u64 count, then count × u32
//! kfac     u8 flag  (0 = none)
//!   steps  u64
//!   layers u64 count, then per layer:
//!     name    u64 byte-length + UTF-8 bytes
//!     a_dim   u64
//!     g_dim   u64
//!     fields  10 × [u8 flag; if 1: u64 count + count × u32]
//!             order: factor_a factor_g qa qg outer va vg inv_a inv_g
//!             ekfac_scale
//! ```
//!
//! Floats are stored as raw IEEE-754 bit patterns, so encode→decode→encode
//! is bytewise idempotent and restore is bitwise transparent — including
//! for fp16-quantized factor values, which live in `f32` storage whose
//! bits round-trip unchanged.

use kaisa_core::{KfacCheckpoint, LayerCheckpoint};

const MAGIC: &[u8; 8] = b"KAISAJOB";
const VERSION: u32 = 1;

/// A decode failure: the byte stream is not a valid job checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The stream does not start with the checkpoint magic.
    BadMagic,
    /// The stream's format version is not supported by this build.
    UnsupportedVersion(u32),
    /// The stream ended before a declared field finished.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// Extra bytes follow a structurally complete checkpoint.
    TrailingBytes(usize),
    /// A structural invariant failed (e.g. a non-UTF-8 layer name).
    Invalid(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a KAISA job checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (this build reads {VERSION})")
            }
            CheckpointError::Truncated { needed, remaining } => {
                write!(f, "truncated checkpoint: needed {needed} more bytes, had {remaining}")
            }
            CheckpointError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after a complete checkpoint")
            }
            CheckpointError::Invalid(what) => write!(f, "invalid checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Everything a paused job needs to resume training, possibly at a
/// different world size.
#[derive(Debug, Clone, PartialEq)]
pub struct JobCheckpoint {
    /// Global optimizer step the job paused at (steps completed).
    pub step: u64,
    /// Flat model parameters (`Model::params_flat` order).
    pub params: Vec<f32>,
    /// SGD momentum velocity; empty if momentum never stepped.
    pub velocity: Vec<f32>,
    /// K-FAC preconditioner state; `None` for first-order-only jobs.
    pub kfac: Option<KfacCheckpoint>,
}

impl JobCheckpoint {
    /// Serialize to the stable byte format described in the module docs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            MAGIC.len()
                + 12
                + 8
                + 4 * self.params.len()
                + 8
                + 4 * self.velocity.len()
                + 1
                + self.kfac.as_ref().map_or(0, |k| 64 + 4 * k.element_count()),
        );
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, VERSION);
        put_u64(&mut out, self.step);
        put_f32s(&mut out, &self.params);
        put_f32s(&mut out, &self.velocity);
        match &self.kfac {
            None => out.push(0),
            Some(kfac) => {
                out.push(1);
                put_u64(&mut out, kfac.steps);
                put_u64(&mut out, kfac.layers.len() as u64);
                for layer in &kfac.layers {
                    put_u64(&mut out, layer.name.len() as u64);
                    out.extend_from_slice(layer.name.as_bytes());
                    put_u64(&mut out, layer.a_dim as u64);
                    put_u64(&mut out, layer.g_dim as u64);
                    for field in layer_fields(layer) {
                        match field {
                            None => out.push(0),
                            Some(data) => {
                                out.push(1);
                                put_f32s(&mut out, data);
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Decode a byte stream produced by [`JobCheckpoint::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<JobCheckpoint, CheckpointError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(MAGIC.len())? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let step = r.u64()?;
        let params = r.f32s()?;
        let velocity = r.f32s()?;
        let kfac = match r.u8()? {
            0 => None,
            1 => {
                let steps = r.u64()?;
                let layer_count = r.len()?;
                let mut layers = Vec::with_capacity(layer_count.min(1 << 16));
                for _ in 0..layer_count {
                    let name_len = r.len()?;
                    let name = std::str::from_utf8(r.take(name_len)?)
                        .map_err(|_| CheckpointError::Invalid("layer name is not UTF-8"))?
                        .to_string();
                    let a_dim = r.len()?;
                    let g_dim = r.len()?;
                    let mut fields: [Option<Vec<f32>>; 10] = Default::default();
                    for slot in fields.iter_mut() {
                        *slot = match r.u8()? {
                            0 => None,
                            1 => Some(r.f32s()?),
                            _ => return Err(CheckpointError::Invalid("field flag is not 0/1")),
                        };
                    }
                    let [factor_a, factor_g, qa, qg, outer, va, vg, inv_a, inv_g, ekfac_scale] =
                        fields;
                    layers.push(LayerCheckpoint {
                        name,
                        a_dim,
                        g_dim,
                        factor_a,
                        factor_g,
                        qa,
                        qg,
                        outer,
                        va,
                        vg,
                        inv_a,
                        inv_g,
                        ekfac_scale,
                    });
                }
                Some(KfacCheckpoint { steps, layers })
            }
            _ => return Err(CheckpointError::Invalid("kfac flag is not 0/1")),
        };
        if r.pos != bytes.len() {
            return Err(CheckpointError::TrailingBytes(bytes.len() - r.pos));
        }
        Ok(JobCheckpoint { step, params, velocity, kfac })
    }
}

/// The ten optional per-layer state fields in wire order.
fn layer_fields(layer: &LayerCheckpoint) -> [Option<&Vec<f32>>; 10] {
    [
        layer.factor_a.as_ref(),
        layer.factor_g.as_ref(),
        layer.qa.as_ref(),
        layer.qg.as_ref(),
        layer.outer.as_ref(),
        layer.va.as_ref(),
        layer.vg.as_ref(),
        layer.inv_a.as_ref(),
        layer.inv_g.as_ref(),
        layer.ekfac_scale.as_ref(),
    ]
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32s(out: &mut Vec<u8>, data: &[f32]) {
    put_u64(out, data.len() as u64);
    for &x in data {
        put_u32(out, x.to_bits());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let remaining = self.buf.len() - self.pos;
        if n > remaining {
            return Err(CheckpointError::Truncated { needed: n, remaining });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }

    /// A u64 that will be used as an in-memory length: reject values that
    /// could not possibly be backed by the remaining bytes, so corrupt
    /// streams fail cleanly instead of attempting huge allocations.
    fn len(&mut self) -> Result<usize, CheckpointError> {
        let v = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if v > remaining {
            return Err(CheckpointError::Truncated {
                needed: v as usize,
                remaining: remaining as usize,
            });
        }
        Ok(v as usize)
    }

    fn f32s(&mut self) -> Result<Vec<f32>, CheckpointError> {
        let count = {
            let v = self.u64()?;
            let remaining = (self.buf.len() - self.pos) as u64;
            if v.saturating_mul(4) > remaining {
                return Err(CheckpointError::Truncated {
                    needed: v.saturating_mul(4) as usize,
                    remaining: remaining as usize,
                });
            }
            v as usize
        };
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(f32::from_bits(self.u32()?));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobCheckpoint {
        JobCheckpoint {
            step: 42,
            params: vec![1.5, -2.25, f32::MIN_POSITIVE, 0.0, -0.0],
            velocity: vec![0.125, 3.0],
            kfac: Some(KfacCheckpoint {
                steps: 42,
                layers: vec![LayerCheckpoint {
                    name: "fc0".to_string(),
                    a_dim: 2,
                    g_dim: 1,
                    factor_a: Some(vec![1.0, 0.5, 0.5, 2.0]),
                    factor_g: Some(vec![3.0]),
                    qa: None,
                    qg: None,
                    outer: Some(vec![0.25, 0.75]),
                    va: None,
                    vg: None,
                    inv_a: None,
                    inv_g: None,
                    ekfac_scale: None,
                }],
            }),
        }
    }

    #[test]
    fn roundtrip_is_bytewise_stable() {
        let ckpt = sample();
        let bytes = ckpt.to_bytes();
        let decoded = JobCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, ckpt);
        // save → load → save is the identity on bytes.
        assert_eq!(decoded.to_bytes(), bytes);
    }

    #[test]
    fn no_kfac_roundtrips() {
        let ckpt = JobCheckpoint { step: 7, params: vec![1.0], velocity: vec![], kfac: None };
        let bytes = ckpt.to_bytes();
        assert_eq!(JobCheckpoint::from_bytes(&bytes).unwrap(), ckpt);
        assert_eq!(JobCheckpoint::from_bytes(&bytes).unwrap().to_bytes(), bytes);
    }

    #[test]
    fn nonfinite_bit_patterns_survive() {
        let mut ckpt = sample();
        ckpt.params = vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY];
        let bytes = ckpt.to_bytes();
        let decoded = JobCheckpoint::from_bytes(&bytes).unwrap();
        for (a, b) in ckpt.params.iter().zip(&decoded.params) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(decoded.to_bytes(), bytes);
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = sample().to_bytes();
        assert_eq!(JobCheckpoint::from_bytes(b"NOTAJOB!rest"), Err(CheckpointError::BadMagic));
        // Truncation anywhere fails cleanly.
        for cut in [bytes.len() / 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(matches!(
                JobCheckpoint::from_bytes(&bytes[..cut]),
                Err(CheckpointError::Truncated { .. })
            ));
        }
        // Trailing garbage is rejected, not silently ignored.
        let mut long = bytes.clone();
        long.extend_from_slice(&[0, 1, 2]);
        assert_eq!(JobCheckpoint::from_bytes(&long), Err(CheckpointError::TrailingBytes(3)));
        // A declared length far past the end of the stream must not allocate.
        let mut huge = bytes.clone();
        let params_off = MAGIC.len() + 4 + 8;
        huge[params_off..params_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(JobCheckpoint::from_bytes(&huge), Err(CheckpointError::Truncated { .. })));
    }

    #[test]
    fn version_gate() {
        let mut bytes = sample().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(JobCheckpoint::from_bytes(&bytes), Err(CheckpointError::UnsupportedVersion(99)));
    }
}
