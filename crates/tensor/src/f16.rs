//! Software IEEE 754 binary16 ("half precision").
//!
//! KAISA stores and communicates Kronecker factors and eigendecompositions in
//! half precision to cut the K-FAC memory overhead and bandwidth roughly in
//! half (paper Section 3.3). This reproduction runs on CPUs without native
//! fp16 arithmetic, so we emulate the *storage* format bit-accurately: values
//! are rounded to the nearest representable binary16 (ties to even) when
//! stored and widened back to `f32` for computation — exactly what a GPU does
//! when a half-precision tensor feeds a single-precision kernel.

/// A 16-bit IEEE 754 binary16 floating point value.
///
/// Stored as raw bits; convert with [`F16::from_f32`] and [`F16::to_f32`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct F16(pub u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// The largest finite binary16 value (65504.0).
    pub const MAX: F16 = F16(0x7BFF);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// The smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: F16 = F16(0x0400);

    /// Convert an `f32` to binary16 with round-to-nearest-even.
    ///
    /// Overflow saturates to infinity (matching IEEE default rounding), and
    /// values below the subnormal range flush to signed zero through the
    /// normal rounding path.
    pub fn from_f32(value: f32) -> F16 {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf / NaN. Preserve NaN-ness with a quiet payload bit.
            let payload = if mant == 0 { 0 } else { 0x0200 | ((mant >> 13) as u16 & 0x03FF) | 1 };
            return F16(sign | 0x7C00 | payload);
        }

        // Unbiased exponent.
        let unbiased = exp - 127;
        if unbiased >= 16 {
            // Too large: saturate to infinity.
            return F16(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normal range for binary16.
            let half_exp = (unbiased + 15) as u16;
            let mant10 = (mant >> 13) as u16;
            let round_bit = (mant >> 12) & 1;
            let sticky = mant & 0x0FFF;
            let mut out = sign | (half_exp << 10) | mant10;
            if round_bit == 1 && (sticky != 0 || (mant10 & 1) == 1) {
                out += 1; // May carry into the exponent; that is correct.
            }
            return F16(out);
        }
        if unbiased >= -25 {
            // Subnormal range: shift the (implicit-1) mantissa right.
            let full = 0x0080_0000 | mant; // 24-bit significand with hidden bit
            let shift = (-unbiased - 14 + 13) as u32; // bits to discard
            let mant10 = (full >> shift) as u16;
            let round_bit = (full >> (shift - 1)) & 1;
            let sticky = full & ((1 << (shift - 1)) - 1);
            let mut out = sign | mant10;
            if round_bit == 1 && (sticky != 0 || (mant10 & 1) == 1) {
                out += 1;
            }
            return F16(out);
        }
        // Underflow to signed zero.
        F16(sign)
    }

    /// Widen this binary16 value back to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let mant = (self.0 & 0x03FF) as u32;

        let bits = if exp == 0 {
            if mant == 0 {
                sign // signed zero
            } else {
                // Subnormal: normalize.
                let mut e = -1i32;
                let mut m = mant;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                m &= 0x03FF;
                // Subnormal value is mant * 2^-24; after s = -(e+1) left
                // shifts the unbiased exponent is -14 - s = e - 13, so the
                // biased f32 exponent is e - 13 + 127 = e + 114.
                let f32_exp = (e + 114) as u32;
                sign | (f32_exp << 23) | (m << 13)
            }
        } else if exp == 0x1F {
            sign | 0x7F80_0000 | (mant << 13) // Inf / NaN
        } else {
            let f32_exp = exp + 127 - 15;
            sign | (f32_exp << 23) | (mant << 13)
        };
        f32::from_bits(bits)
    }

    /// True if this value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// True if this value is +/- infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }
}

/// Round an `f32` through binary16 storage and back.
///
/// This is the numerical effect of storing a tensor in half precision: the
/// value loses mantissa bits and may saturate. KAISA applies this to factor
/// storage when `Precision::Fp16` is selected.
pub fn quantize_f16(value: f32) -> f32 {
    F16::from_f32(value).to_f32()
}

/// Quantize a whole slice in place through binary16 storage.
///
/// This is the hot path of fp16 factor packing/unpacking: on x86-64 with
/// AVX2 it rounds 8 lanes per instruction through the vector quantizer in
/// `crate::simd`, which mirrors [`F16::from_f32`]/[`F16::to_f32`] bit for
/// bit (property-tested). Selecting the `naive` kernel via
/// `KAISA_GEMM_KERNEL` (or [`crate::set_gemm_kernel`]) forces the scalar
/// reference here too, so `naive` restores the fully scalar process.
pub fn quantize_slice_f16(values: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if crate::gemm::gemm_kernel() != crate::gemm::GemmKernel::Naive
        && crate::simd::quantize_slice_f16_avx2(values)
    {
        return;
    }
    quantize_slice_f16_scalar(values);
}

/// The scalar reference for [`quantize_slice_f16`] (always available; the
/// oracle the SIMD path is property-tested against).
pub fn quantize_slice_f16_scalar(values: &mut [f32]) {
    for v in values.iter_mut() {
        *v = quantize_f16(*v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let f = i as f32;
            assert_eq!(F16::from_f32(f).to_f32(), f, "integer {i} should be exact in f16");
        }
    }

    #[test]
    fn powers_of_two_roundtrip() {
        for e in -14..=15 {
            let f = (2.0f32).powi(e);
            assert_eq!(F16::from_f32(f).to_f32(), f);
        }
    }

    #[test]
    fn max_value() {
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::from_f32(65504.0).0, F16::MAX.0);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(F16::from_f32(1e6).is_infinite());
        assert!(F16::from_f32(-1e6).to_f32().is_infinite());
        assert!(F16::from_f32(-1e6).to_f32() < 0.0);
    }

    #[test]
    fn nan_is_preserved() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn subnormals_roundtrip() {
        // Smallest positive subnormal of binary16 is 2^-24.
        let tiny = (2.0f32).powi(-24);
        assert_eq!(F16::from_f32(tiny).to_f32(), tiny);
        let mid = 3.0 * (2.0f32).powi(-24);
        assert_eq!(F16::from_f32(mid).to_f32(), mid);
    }

    #[test]
    fn underflow_flushes_to_zero() {
        let too_small = (2.0f32).powi(-26);
        assert_eq!(F16::from_f32(too_small).to_f32(), 0.0);
        let neg = -(2.0f32).powi(-26);
        let q = F16::from_f32(neg);
        assert_eq!(q.to_f32(), 0.0);
        assert_eq!(q.0 & 0x8000, 0x8000, "sign of zero preserved");
    }

    #[test]
    fn rounding_is_to_nearest_even() {
        // 1 + 2^-11 is exactly between 1.0 and 1+2^-10; ties-to-even keeps 1.0.
        let between = 1.0 + (2.0f32).powi(-11);
        assert_eq!(F16::from_f32(between).to_f32(), 1.0);
        // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9; rounds up to even mantissa.
        let between2 = 1.0 + 3.0 * (2.0f32).powi(-11);
        assert_eq!(F16::from_f32(between2).to_f32(), 1.0 + (2.0f32).powi(-9));
    }

    #[test]
    fn quantize_error_is_bounded_relative() {
        // Relative rounding error of binary16 normals is at most 2^-11.
        let mut x = 0.001f32;
        while x < 60000.0 {
            let q = quantize_f16(x);
            let rel = ((q - x) / x).abs();
            assert!(rel <= (2.0f32).powi(-11) + 1e-9, "x={x} q={q} rel={rel}");
            x *= 1.37;
        }
    }

    #[test]
    fn rounding_carry_into_exponent() {
        // Largest mantissa + round up must carry cleanly: 2047.5 -> 2048.
        assert_eq!(F16::from_f32(2047.5).to_f32(), 2048.0);
    }
}
