//! Blocked, thread-parallel GEMM kernels.
//!
//! Three variants are provided: `C = A·B`, `C = Aᵀ·B`, and `C = A·Bᵀ`, all
//! row-major. The K-FAC hot paths are `Aᵀ·B` (factor statistics `aᵀa`, `gᵀg`)
//! and plain products (preconditioning `Qᵀ·∇L·Q`), so those avoid
//! materializing transposes.
//!
//! Two kernel families sit behind each entry point, selected by
//! [`GemmKernel`] (env `KAISA_GEMM_KERNEL`, [`set_gemm_kernel`], or the
//! `KfacConfig` knob in `kaisa-core`):
//!
//! * **naive** — the original i-k-j / k-i-j / dot-product loops. These are
//!   the reference implementation the blocked path is property-tested
//!   against, and stay the permanent oracle.
//! * **blocked** — packed-panel, register-tiled microkernels (`MR x NR` =
//!   6×16) with an AVX2 `std::arch` inner loop behind runtime feature
//!   detection and a portable scalar fallback. A panels are packed `MR`
//!   rows at a time per `MC`-row cache block, B panels `NR` columns at a
//!   time; panels carry the **full** k extent (no k-blocking), so every
//!   `C[i,j]` receives exactly one `mul` + `add` per `kk` in ascending
//!   order — the identical floating-point sequence to the naive loops,
//!   making the two kernels bitwise interchangeable. The microkernel never
//!   fuses into FMA for the same reason.
//!
//! Parallelization splits `C` into independent row bands, each handed to one
//! scoped thread via `chunks_mut` — data-race free by construction, and
//! bitwise independent of the split because every `C` element's update
//! sequence is confined to its own band. Small problems stay serial to
//! avoid thread-spawn overhead.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Rows per register tile (microkernel height).
pub(crate) const MR: usize = 6;
/// Columns per register tile (microkernel width; two 8-lane AVX2 vectors).
pub(crate) const NR: usize = 16;
/// Rows of packed A per cache block.
pub(crate) const MC: usize = 48;

/// GEMM kernel selection, settable per process via the `KAISA_GEMM_KERNEL`
/// environment variable (`auto` | `blocked` | `naive`), [`set_gemm_kernel`],
/// or the `gemm_kernel` config knob in `kaisa-core`.
///
/// Both kernels produce bitwise-identical results (property-tested); the
/// selection only trades packing overhead against microkernel throughput,
/// so flipping it never perturbs the training trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GemmKernel {
    /// Blocked microkernels for shapes past the packing break-even point,
    /// naive loops below it (a pure function of the shape, so the choice is
    /// deterministic across ranks and runs).
    #[default]
    Auto,
    /// Always the packed/blocked microkernel path.
    Blocked,
    /// Always the original reference loops (the property-test oracle).
    Naive,
}

impl GemmKernel {
    /// Stable lowercase name (the `KAISA_GEMM_KERNEL` vocabulary).
    pub fn as_str(self) -> &'static str {
        match self {
            GemmKernel::Auto => "auto",
            GemmKernel::Blocked => "blocked",
            GemmKernel::Naive => "naive",
        }
    }
}

impl std::fmt::Display for GemmKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for GemmKernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(GemmKernel::Auto),
            "blocked" => Ok(GemmKernel::Blocked),
            "naive" => Ok(GemmKernel::Naive),
            other => Err(format!("unknown GEMM kernel '{other}' (auto|blocked|naive)")),
        }
    }
}

/// Process-wide programmatic override; 0 = unset (fall back to the env).
static KERNEL_OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn env_kernel() -> GemmKernel {
    static ENV: OnceLock<GemmKernel> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("KAISA_GEMM_KERNEL")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(GemmKernel::Auto)
    })
}

/// Override the process-wide GEMM kernel selection (wins over the
/// `KAISA_GEMM_KERNEL` environment variable).
pub fn set_gemm_kernel(kernel: GemmKernel) {
    let code = match kernel {
        GemmKernel::Auto => 1,
        GemmKernel::Blocked => 2,
        GemmKernel::Naive => 3,
    };
    KERNEL_OVERRIDE.store(code, Ordering::Relaxed);
}

/// The currently selected GEMM kernel: the last [`set_gemm_kernel`] value,
/// else `KAISA_GEMM_KERNEL`, else [`GemmKernel::Auto`].
pub fn gemm_kernel() -> GemmKernel {
    match KERNEL_OVERRIDE.load(Ordering::Relaxed) {
        1 => GemmKernel::Auto,
        2 => GemmKernel::Blocked,
        3 => GemmKernel::Naive,
        _ => env_kernel(),
    }
}

/// Below this many multiply-adds the serial kernel wins.
pub(crate) const PAR_THRESHOLD: usize = 64 * 64 * 64;

/// Below this many multiply-adds `Auto` keeps the naive loops: the packed
/// panels and tile staging cost more than they save on tiny operands.
const BLOCKED_THRESHOLD: usize = 16 * 16 * 16;

pub(crate) fn use_blocked(kernel: GemmKernel, m: usize, k: usize, n: usize) -> bool {
    match kernel {
        GemmKernel::Naive => false,
        GemmKernel::Blocked => true,
        GemmKernel::Auto => m * n * k >= BLOCKED_THRESHOLD,
    }
}

pub(crate) fn num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Rows of `C` handed to each worker thread (naive path).
fn row_band(m: usize) -> usize {
    (m / (num_threads() * 4)).max(4)
}

/// Rows of `C` per worker thread on the blocked path: a multiple of `MR` so
/// every band but the last is made of full microkernel tiles.
fn blocked_band(m: usize) -> usize {
    let per = m.div_ceil(num_threads() * 2).max(MR);
    per.div_ceil(MR) * MR
}

/// Run `kernel(band_index, c_band)` for each `band * n`-element chunk of `c`
/// on scoped worker threads.
fn par_row_bands<F>(c: &mut [f32], band: usize, n: usize, kernel: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    std::thread::scope(|scope| {
        for (band_idx, c_band) in c.chunks_mut(band * n).enumerate() {
            let kernel = &kernel;
            scope.spawn(move || kernel(band_idx, c_band));
        }
    });
}

/// Operand layouts the blocked path understands; each maps a logical
/// `A[i, kk] * B[kk, j]` access onto the caller's storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Layout {
    /// `A` is `[m x k]`, `B` is `[k x n]`; accumulates into existing `C`.
    Nn,
    /// `A` is stored `[k x m]` (logical `Aᵀ·B`); accumulates into `C`.
    Tn,
    /// `B` is stored `[n x k]` (logical `A·Bᵀ`); sums into a zeroed local
    /// accumulator first, then adds once into `C` — matching the naive
    /// dot-product kernel's association.
    Nt,
}

/// `C[m x n] = A[m x k] · B[k x n]`, all row-major. `c` must be zeroed by the
/// caller (the kernels accumulate).
pub fn gemm_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_nn_with(gemm_kernel(), m, k, n, a, b, c);
}

/// `gemm_nn` with an explicit kernel selection (benchmarks and the
/// property suite pin both paths without touching the process-wide knob).
pub fn gemm_nn_with(
    kernel: GemmKernel,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if use_blocked(kernel, m, k, n) {
        blocked_gemm(Layout::Nn, m, k, n, a, b, c);
    } else if m * n * k >= PAR_THRESHOLD && m > 1 {
        let band = row_band(m);
        par_row_bands(c, band, n, |band_idx, c_band| {
            let r0 = band_idx * band;
            let rows = c_band.len() / n;
            gemm_nn_serial(rows, k, n, &a[r0 * k..(r0 + rows) * k], b, c_band);
        });
    } else {
        gemm_nn_serial(m, k, n, a, b, c);
    }
}

fn gemm_nn_serial(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    // i-k-j loop order: unit-stride access on both B and C rows, which the
    // auto-vectorizer handles well. Every `kk` term is accumulated — a zero
    // `A[i, kk]` is not skipped, so NaN/Inf in `B` propagate per IEEE 754
    // and the loop stays the bitwise oracle for the blocked path.
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (kk, &aik) in a_row.iter().enumerate() {
            let b_row = &b[kk * n..(kk + 1) * n];
            for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                *cj += aik * bj;
            }
        }
    }
}

/// `C[m x n] = Aᵀ · B` where `A` is stored as `[k x m]` row-major (so `Aᵀ` is
/// `m x k`), `B` is `[k x n]`. This is the factor-statistic kernel
/// `A = aᵀ·a / batch` with `a` stored batch-major.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_tn_with(gemm_kernel(), m, k, n, a, b, c);
}

/// `gemm_tn` with an explicit kernel selection.
pub fn gemm_tn_with(
    kernel: GemmKernel,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if use_blocked(kernel, m, k, n) {
        blocked_gemm(Layout::Tn, m, k, n, a, b, c);
    } else if m * n * k >= PAR_THRESHOLD && m > 1 {
        let band = row_band(m);
        par_row_bands(c, band, n, |band_idx, c_band| {
            let r0 = band_idx * band;
            let rows = c_band.len() / n;
            gemm_tn_serial_range(r0, rows, m, k, n, a, b, c_band);
        });
    } else {
        gemm_tn_serial_range(0, m, m, k, n, a, b, c);
    }
}

#[allow(clippy::too_many_arguments)]
fn gemm_tn_serial_range(
    r0: usize,
    rows: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    // C[i, j] = sum_kk A[kk, i] * B[kk, j]; iterate kk outer so both A and B
    // rows stream with unit stride. Zero `A[kk, i]` terms are accumulated,
    // not skipped (IEEE NaN/Inf propagation; see `gemm_nn_serial`).
    for kk in 0..k {
        let a_row = &a[kk * m..(kk + 1) * m];
        let b_row = &b[kk * n..(kk + 1) * n];
        for i in 0..rows {
            let aik = a_row[r0 + i];
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                *cj += aik * bj;
            }
        }
    }
}

/// `C[m x n] = A · Bᵀ` where `A` is `[m x k]` and `B` is `[n x k]` row-major.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_nt_with(gemm_kernel(), m, k, n, a, b, c);
}

/// `gemm_nt` with an explicit kernel selection.
pub fn gemm_nt_with(
    kernel: GemmKernel,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if use_blocked(kernel, m, k, n) {
        blocked_gemm(Layout::Nt, m, k, n, a, b, c);
    } else if m * n * k >= PAR_THRESHOLD && m > 1 {
        let band = row_band(m);
        par_row_bands(c, band, n, |band_idx, c_band| {
            let r0 = band_idx * band;
            let rows = c_band.len() / n;
            gemm_nt_serial(rows, k, n, &a[r0 * k..(r0 + rows) * k], b, c_band);
        });
    } else {
        gemm_nt_serial(m, k, n, a, b, c);
    }
}

fn gemm_nt_serial(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    // C[i, j] = dot(A row i, B row j): both unit stride.
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, cj) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *cj += acc;
        }
    }
}

// ---------------------------------------------------------------------------
// Blocked path: packed panels + register-tiled microkernel.
// ---------------------------------------------------------------------------

/// Pack `B` into `NR`-column panels, each laid out `[k][NR]` with
/// zero-padded edge columns, so the microkernel streams both vectors of a
/// row with unit stride regardless of the original layout.
pub(crate) fn pack_b(layout: Layout, k: usize, n: usize, b: &[f32]) -> Vec<f32> {
    let panels = n.div_ceil(NR);
    let mut bp = vec![0.0f32; panels * k * NR];
    for jp in 0..panels {
        let j0 = jp * NR;
        let nr = NR.min(n - j0);
        let panel = &mut bp[jp * k * NR..(jp + 1) * k * NR];
        match layout {
            Layout::Nn | Layout::Tn => {
                for kk in 0..k {
                    let src = &b[kk * n + j0..kk * n + j0 + nr];
                    panel[kk * NR..kk * NR + nr].copy_from_slice(src);
                }
            }
            Layout::Nt => {
                // B stored [n x k]: column j of the logical B is row j of
                // the storage.
                for jj in 0..nr {
                    let col = &b[(j0 + jj) * k..(j0 + jj + 1) * k];
                    for (kk, &v) in col.iter().enumerate() {
                        panel[kk * NR + jj] = v;
                    }
                }
            }
        }
    }
    bp
}

/// Pack rows `[r0, r0 + mc)` of the logical `A` into `MR`-row panels laid
/// out `[k][MR]`, zero-padding the last panel's missing rows.
pub(crate) fn pack_a(
    layout: Layout,
    r0: usize,
    mc: usize,
    m: usize,
    k: usize,
    a: &[f32],
    ap: &mut [f32],
) {
    let panels = mc.div_ceil(MR);
    debug_assert!(ap.len() >= panels * k * MR);
    ap[..panels * k * MR].fill(0.0);
    for ip in 0..panels {
        let i0 = ip * MR;
        let mr = MR.min(mc - i0);
        let panel = &mut ap[ip * k * MR..(ip + 1) * k * MR];
        match layout {
            Layout::Nn | Layout::Nt => {
                for rr in 0..mr {
                    let row = &a[(r0 + i0 + rr) * k..(r0 + i0 + rr + 1) * k];
                    for (kk, &v) in row.iter().enumerate() {
                        panel[kk * MR + rr] = v;
                    }
                }
            }
            Layout::Tn => {
                // A stored [k x m]: logical A[i, kk] = a[kk * m + i].
                for kk in 0..k {
                    let a_row = &a[kk * m + r0 + i0..kk * m + r0 + i0 + mr];
                    panel[kk * MR..kk * MR + mr].copy_from_slice(a_row);
                }
            }
        }
    }
}

/// Portable microkernel: identical per-element mul-then-add sequence to the
/// AVX2 kernel (each lane is an independent IEEE operation either way).
fn microkernel_portable(k: usize, ap: &[f32], bp: &[f32], acc: &mut [f32; MR * NR]) {
    for kk in 0..k {
        let a_col = &ap[kk * MR..kk * MR + MR];
        let b_row = &bp[kk * NR..kk * NR + NR];
        for (r, &ar) in a_col.iter().enumerate() {
            let row = &mut acc[r * NR..(r + 1) * NR];
            for (cv, &bv) in row.iter_mut().zip(b_row) {
                *cv += ar * bv;
            }
        }
    }
}

#[inline]
pub(crate) fn microkernel(k: usize, ap: &[f32], bp: &[f32], acc: &mut [f32; MR * NR]) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2_available() {
        // SAFETY: `microkernel_6x16_avx2` is `#[target_feature(enable =
        // "avx2")]`; `avx2_available()` just verified the CPU supports it.
        unsafe { crate::simd::microkernel_6x16_avx2(k, ap, bp, acc) };
        return;
    }
    microkernel_portable(k, ap, bp, acc);
}

/// Blocked GEMM driver: pack B once (shared read-only across row bands),
/// then per band pack `MC`-row slabs of A and sweep register tiles.
fn blocked_gemm(layout: Layout, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let bp = pack_b(layout, k, n, b);
    if m * n * k >= PAR_THRESHOLD && m > 1 {
        let band = blocked_band(m);
        let bp = &bp;
        par_row_bands(c, band, n, |band_idx, c_band| {
            let r0 = band_idx * band;
            let rows = c_band.len() / n;
            blocked_rows(layout, r0, rows, m, k, n, a, bp, c_band);
        });
    } else {
        blocked_rows(layout, 0, m, m, k, n, a, &bp, c);
    }
}

/// Serial blocked kernel over `rows` rows of `C` starting at logical row
/// `r0` (`c` is the band's slice). Stages each `MR x NR` tile of `C`
/// through a contiguous accumulator so the microkernel sees unit stride and
/// edge tiles are handled by zero padding.
#[allow(clippy::too_many_arguments)]
fn blocked_rows(
    layout: Layout,
    r0: usize,
    rows: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    bp: &[f32],
    c: &mut [f32],
) {
    let n_panels = n.div_ceil(NR);
    let mut ap = vec![0.0f32; MC.min(rows).div_ceil(MR) * MR * k];
    let mut tile = [0.0f32; MR * NR];
    for ic in (0..rows).step_by(MC) {
        let mc = MC.min(rows - ic);
        let m_panels = mc.div_ceil(MR);
        pack_a(layout, r0 + ic, mc, m, k, a, &mut ap[..m_panels * MR * k]);
        for jp in 0..n_panels {
            let j0 = jp * NR;
            let nr = NR.min(n - j0);
            let b_panel = &bp[jp * k * NR..(jp + 1) * k * NR];
            for ip in 0..m_panels {
                let i0 = ip * MR;
                let mr = MR.min(mc - i0);
                let a_panel = &ap[ip * k * MR..(ip + 1) * k * MR];
                let c0 = ic + i0;
                match layout {
                    Layout::Nn | Layout::Tn => {
                        // Naive association: C is the running accumulator.
                        // Stage the live C values into the tile (padding
                        // lanes start at zero and are discarded).
                        tile.fill(0.0);
                        for rr in 0..mr {
                            let src = &c[(c0 + rr) * n + j0..(c0 + rr) * n + j0 + nr];
                            tile[rr * NR..rr * NR + nr].copy_from_slice(src);
                        }
                        microkernel(k, a_panel, b_panel, &mut tile);
                        for rr in 0..mr {
                            let dst = &mut c[(c0 + rr) * n + j0..(c0 + rr) * n + j0 + nr];
                            dst.copy_from_slice(&tile[rr * NR..rr * NR + nr]);
                        }
                    }
                    Layout::Nt => {
                        // Naive association: a zeroed local accumulator is
                        // summed over k, then added into C exactly once.
                        tile.fill(0.0);
                        microkernel(k, a_panel, b_panel, &mut tile);
                        for rr in 0..mr {
                            let dst = &mut c[(c0 + rr) * n + j0..(c0 + rr) * n + j0 + nr];
                            for (cv, &tv) in dst.iter_mut().zip(&tile[rr * NR..rr * NR + nr]) {
                                *cv += tv;
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Matrix, Rng};

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    /// Shapes that stress every edge of the tiling: unit, sub-tile,
    /// exact-tile, off-by-one around MR/NR/MC, tall/skinny/wide.
    const ADVERSARIAL: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (2, 3, 5),
        (5, 7, 15),
        (6, 8, 16),
        (7, 9, 17),
        (12, 4, 32),
        (17, 9, 23),
        (47, 33, 15),
        (48, 21, 16),
        (49, 2, 31),
        (53, 64, 97),
        (96, 5, 3),
        (3, 5, 96),
        (200, 3, 2),
        (2, 3, 200),
        (64, 64, 64),
        (80, 70, 90),
    ];

    #[test]
    fn gemm_nn_matches_naive_over_shapes() {
        let mut rng = Rng::seed_from_u64(1);
        for &(m, k, n) in ADVERSARIAL {
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 1.0, &mut rng);
            let mut c = vec![0.0; m * n];
            gemm_nn(m, k, n, a.as_slice(), b.as_slice(), &mut c);
            let expect = naive(m, k, n, a.as_slice(), b.as_slice());
            for (x, y) in c.iter().zip(&expect) {
                assert!((x - y).abs() < 1e-3, "({m},{k},{n})");
            }
        }
    }

    #[test]
    fn gemm_tn_matches_naive() {
        let mut rng = Rng::seed_from_u64(2);
        for &(m, k, n) in &[(4, 6, 3), (33, 65, 17), (70, 90, 80)] {
            // A stored [k x m]; logical product is Aᵀ B.
            let a = Matrix::randn(k, m, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 1.0, &mut rng);
            let mut c = vec![0.0; m * n];
            gemm_tn(m, k, n, a.as_slice(), b.as_slice(), &mut c);
            let at = a.transpose();
            let expect = naive(m, k, n, at.as_slice(), b.as_slice());
            for (x, y) in c.iter().zip(&expect) {
                assert!((x - y).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn gemm_nt_matches_naive() {
        let mut rng = Rng::seed_from_u64(3);
        for &(m, k, n) in &[(5, 4, 7), (29, 31, 37), (75, 85, 95)] {
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(n, k, 1.0, &mut rng);
            let mut c = vec![0.0; m * n];
            gemm_nt(m, k, n, a.as_slice(), b.as_slice(), &mut c);
            let bt = b.transpose();
            let expect = naive(m, k, n, a.as_slice(), bt.as_slice());
            for (x, y) in c.iter().zip(&expect) {
                assert!((x - y).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn blocked_bitwise_matches_naive_all_layouts() {
        let mut rng = Rng::seed_from_u64(11);
        for &(m, k, n) in ADVERSARIAL {
            // nn
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 1.0, &mut rng);
            let mut c_blocked = vec![0.5; m * n];
            let mut c_naive = vec![0.5; m * n];
            gemm_nn_with(GemmKernel::Blocked, m, k, n, a.as_slice(), b.as_slice(), &mut c_blocked);
            gemm_nn_with(GemmKernel::Naive, m, k, n, a.as_slice(), b.as_slice(), &mut c_naive);
            assert_eq!(c_blocked, c_naive, "nn ({m},{k},{n})");
            // tn: A stored [k x m]
            let a = Matrix::randn(k, m, 1.0, &mut rng);
            let mut c_blocked = vec![-0.25; m * n];
            let mut c_naive = vec![-0.25; m * n];
            gemm_tn_with(GemmKernel::Blocked, m, k, n, a.as_slice(), b.as_slice(), &mut c_blocked);
            gemm_tn_with(GemmKernel::Naive, m, k, n, a.as_slice(), b.as_slice(), &mut c_naive);
            assert_eq!(c_blocked, c_naive, "tn ({m},{k},{n})");
            // nt: B stored [n x k]
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(n, k, 1.0, &mut rng);
            let mut c_blocked = vec![1.25; m * n];
            let mut c_naive = vec![1.25; m * n];
            gemm_nt_with(GemmKernel::Blocked, m, k, n, a.as_slice(), b.as_slice(), &mut c_blocked);
            gemm_nt_with(GemmKernel::Naive, m, k, n, a.as_slice(), b.as_slice(), &mut c_naive);
            assert_eq!(c_blocked, c_naive, "nt ({m},{k},{n})");
        }
    }

    #[test]
    fn nan_inf_propagate_through_zero_a_entries() {
        // A zero in A must not suppress NaN/Inf coming from B: 0 * NaN and
        // 0 * Inf are both NaN under IEEE 754, in every kernel.
        let (m, k, n) = (2, 3, 2);
        let a = vec![1.0, 0.0, 2.0, 0.0, 0.0, 0.0];
        let mut b = vec![1.0; k * n];
        b[2] = f32::NAN; // B[1, 0]
        b[5] = f32::INFINITY; // B[2, 1]
        for kernel in [GemmKernel::Naive, GemmKernel::Blocked] {
            let mut c = vec![0.0; m * n];
            gemm_nn_with(kernel, m, k, n, &a, &b, &mut c);
            assert!(c[0].is_nan(), "{kernel}: 0*NaN must poison C[0,0]");
            assert!(c[2].is_nan(), "{kernel}: all-zero A row still sees NaN");
            assert!(c[3].is_nan(), "{kernel}: 0*Inf must poison C[1,1]");
        }
        // And the two kernels agree bitwise on the non-NaN lanes.
        let mut c_b = vec![0.0; m * n];
        let mut c_n = vec![0.0; m * n];
        gemm_nn_with(GemmKernel::Blocked, m, k, n, &a, &b, &mut c_b);
        gemm_nn_with(GemmKernel::Naive, m, k, n, &a, &b, &mut c_n);
        for (x, y) in c_b.iter().zip(&c_n) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn accumulation_semantics() {
        // Kernels accumulate into C rather than overwriting.
        for kernel in [GemmKernel::Naive, GemmKernel::Blocked] {
            let a = vec![1.0, 0.0, 0.0, 1.0];
            let b = vec![2.0, 0.0, 0.0, 2.0];
            let mut c = vec![1.0, 1.0, 1.0, 1.0];
            gemm_nn_with(kernel, 2, 2, 2, &a, &b, &mut c);
            assert_eq!(c, vec![3.0, 1.0, 1.0, 3.0], "{kernel}");
        }
    }

    #[test]
    fn parallel_band_split_matches_serial() {
        // Large enough to cross PAR_THRESHOLD so the banded path runs.
        let mut rng = Rng::seed_from_u64(4);
        let (m, k, n) = (96, 80, 72);
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        let mut c_par = vec![0.0; m * n];
        gemm_nn_with(GemmKernel::Naive, m, k, n, a.as_slice(), b.as_slice(), &mut c_par);
        let mut c_serial = vec![0.0; m * n];
        gemm_nn_serial(m, k, n, a.as_slice(), b.as_slice(), &mut c_serial);
        assert_eq!(c_par, c_serial);
    }

    #[test]
    fn blocked_panel_scheduler_matches_serial() {
        // The banded blocked path (panel scheduler across scoped threads)
        // must be bitwise identical to a single serial blocked sweep —
        // every C element's k-ascending update chain lives in one band.
        let mut rng = Rng::seed_from_u64(5);
        let (m, k, n) = (97, 80, 73); // crosses PAR_THRESHOLD, ragged edges
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        let mut c_par = vec![0.0; m * n];
        gemm_nn_with(GemmKernel::Blocked, m, k, n, a.as_slice(), b.as_slice(), &mut c_par);
        let bp = pack_b(Layout::Nn, k, n, b.as_slice());
        let mut c_serial = vec![0.0; m * n];
        blocked_rows(Layout::Nn, 0, m, m, k, n, a.as_slice(), &bp, &mut c_serial);
        assert_eq!(c_par, c_serial);
    }

    #[test]
    fn kernel_selection_parses_and_displays() {
        for (s, k) in [
            ("auto", GemmKernel::Auto),
            ("BLOCKED", GemmKernel::Blocked),
            ("naive", GemmKernel::Naive),
        ] {
            assert_eq!(s.parse::<GemmKernel>().unwrap(), k);
        }
        assert!("fast".parse::<GemmKernel>().is_err());
        assert_eq!(GemmKernel::Blocked.to_string(), "blocked");
    }
}
