//! Blocked, thread-parallel GEMM kernels.
//!
//! Three variants are provided: `C = A·B`, `C = Aᵀ·B`, and `C = A·Bᵀ`, all
//! row-major. The K-FAC hot paths are `Aᵀ·B` (factor statistics `aᵀa`, `gᵀg`)
//! and plain products (preconditioning `Qᵀ·∇L·Q`), so those avoid
//! materializing transposes.
//!
//! Parallelization splits `C` into independent row bands, each handed to one
//! scoped thread via `chunks_mut` — data-race free by construction. Small
//! problems stay serial to avoid thread-spawn overhead.

/// Below this many multiply-adds the serial kernel wins.
const PAR_THRESHOLD: usize = 64 * 64 * 64;

fn num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Rows of `C` handed to each worker thread.
fn row_band(m: usize) -> usize {
    (m / (num_threads() * 4)).max(4)
}

/// Run `kernel(band_index, c_band)` for each `band * n`-element chunk of `c`
/// on scoped worker threads.
fn par_row_bands<F>(c: &mut [f32], band: usize, n: usize, kernel: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    std::thread::scope(|scope| {
        for (band_idx, c_band) in c.chunks_mut(band * n).enumerate() {
            let kernel = &kernel;
            scope.spawn(move || kernel(band_idx, c_band));
        }
    });
}

/// `C[m x n] = A[m x k] · B[k x n]`, all row-major. `c` must be zeroed by the
/// caller (the kernels accumulate).
pub fn gemm_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m * n * k >= PAR_THRESHOLD && m > 1 {
        let band = row_band(m);
        par_row_bands(c, band, n, |band_idx, c_band| {
            let r0 = band_idx * band;
            let rows = c_band.len() / n;
            gemm_nn_serial(rows, k, n, &a[r0 * k..(r0 + rows) * k], b, c_band);
        });
    } else {
        gemm_nn_serial(m, k, n, a, b, c);
    }
}

fn gemm_nn_serial(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    // i-k-j loop order: unit-stride access on both B and C rows, which the
    // auto-vectorizer handles well.
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                *cj += aik * bj;
            }
        }
    }
}

/// `C[m x n] = Aᵀ · B` where `A` is stored as `[k x m]` row-major (so `Aᵀ` is
/// `m x k`), `B` is `[k x n]`. This is the factor-statistic kernel
/// `A = aᵀ·a / batch` with `a` stored batch-major.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m * n * k >= PAR_THRESHOLD && m > 1 {
        let band = row_band(m);
        par_row_bands(c, band, n, |band_idx, c_band| {
            let r0 = band_idx * band;
            let rows = c_band.len() / n;
            gemm_tn_serial_range(r0, rows, m, k, n, a, b, c_band);
        });
    } else {
        gemm_tn_serial_range(0, m, m, k, n, a, b, c);
    }
}

#[allow(clippy::too_many_arguments)]
fn gemm_tn_serial_range(
    r0: usize,
    rows: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    // C[i, j] = sum_kk A[kk, i] * B[kk, j]; iterate kk outer so both A and B
    // rows stream with unit stride.
    for kk in 0..k {
        let a_row = &a[kk * m..(kk + 1) * m];
        let b_row = &b[kk * n..(kk + 1) * n];
        for i in 0..rows {
            let aik = a_row[r0 + i];
            if aik == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                *cj += aik * bj;
            }
        }
    }
}

/// `C[m x n] = A · Bᵀ` where `A` is `[m x k]` and `B` is `[n x k]` row-major.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    if m * n * k >= PAR_THRESHOLD && m > 1 {
        let band = row_band(m);
        par_row_bands(c, band, n, |band_idx, c_band| {
            let r0 = band_idx * band;
            let rows = c_band.len() / n;
            gemm_nt_serial(rows, k, n, &a[r0 * k..(r0 + rows) * k], b, c_band);
        });
    } else {
        gemm_nt_serial(m, k, n, a, b, c);
    }
}

fn gemm_nt_serial(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    // C[i, j] = dot(A row i, B row j): both unit stride.
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, cj) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *cj += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Matrix, Rng};

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn gemm_nn_matches_naive_over_shapes() {
        let mut rng = Rng::seed_from_u64(1);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (17, 9, 23), (64, 64, 64), (80, 70, 90)] {
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 1.0, &mut rng);
            let mut c = vec![0.0; m * n];
            gemm_nn(m, k, n, a.as_slice(), b.as_slice(), &mut c);
            let expect = naive(m, k, n, a.as_slice(), b.as_slice());
            for (x, y) in c.iter().zip(&expect) {
                assert!((x - y).abs() < 1e-3, "({m},{k},{n})");
            }
        }
    }

    #[test]
    fn gemm_tn_matches_naive() {
        let mut rng = Rng::seed_from_u64(2);
        for &(m, k, n) in &[(4, 6, 3), (33, 65, 17), (70, 90, 80)] {
            // A stored [k x m]; logical product is Aᵀ B.
            let a = Matrix::randn(k, m, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 1.0, &mut rng);
            let mut c = vec![0.0; m * n];
            gemm_tn(m, k, n, a.as_slice(), b.as_slice(), &mut c);
            let at = a.transpose();
            let expect = naive(m, k, n, at.as_slice(), b.as_slice());
            for (x, y) in c.iter().zip(&expect) {
                assert!((x - y).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn gemm_nt_matches_naive() {
        let mut rng = Rng::seed_from_u64(3);
        for &(m, k, n) in &[(5, 4, 7), (29, 31, 37), (75, 85, 95)] {
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(n, k, 1.0, &mut rng);
            let mut c = vec![0.0; m * n];
            gemm_nt(m, k, n, a.as_slice(), b.as_slice(), &mut c);
            let bt = b.transpose();
            let expect = naive(m, k, n, a.as_slice(), bt.as_slice());
            for (x, y) in c.iter().zip(&expect) {
                assert!((x - y).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn accumulation_semantics() {
        // Kernels accumulate into C rather than overwriting.
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![2.0, 0.0, 0.0, 2.0];
        let mut c = vec![1.0, 1.0, 1.0, 1.0];
        gemm_nn(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, vec![3.0, 1.0, 1.0, 3.0]);
    }

    #[test]
    fn parallel_band_split_matches_serial() {
        // Large enough to cross PAR_THRESHOLD so the banded path runs.
        let mut rng = Rng::seed_from_u64(4);
        let (m, k, n) = (96, 80, 72);
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        let mut c_par = vec![0.0; m * n];
        gemm_nn(m, k, n, a.as_slice(), b.as_slice(), &mut c_par);
        let mut c_serial = vec![0.0; m * n];
        gemm_nn_serial(m, k, n, a.as_slice(), b.as_slice(), &mut c_serial);
        assert_eq!(c_par, c_serial);
    }
}
