//! Symmetric rank-k (SYRK) fast path for factor statistics: `C = AᵀA`.
//!
//! Every K-FAC factor statistic is a Gram product — `A = aᵀa`, `G = gᵀg` —
//! whose output is symmetric, so a full GEMM wastes half its multiply-adds.
//! [`syrk_tn`] computes only the **lower triangle** (`j ≤ i`) and then
//! mirrors it into the upper triangle with an exact bit copy
//! (`c[i][j] = c[j][i]`). Each lower-triangle element receives the identical
//! per-`kk`-ascending mul-then-add sequence as [`gemm_tn_with`](crate::gemm_tn_with), and the
//! mirrored upper element is bitwise equal to what the GEMM would have
//! produced there because IEEE 754 multiplication is commutative at the bit
//! level for the operand classes that reach it (`A[kk,i]·A[kk,j]` vs
//! `A[kk,j]·A[kk,i]`) — so the whole matrix is **bitwise identical** to
//! `gemm_tn(m, k, m, a, a, c)` and the repo's equivalence contract holds.
//!
//! Like the GEMM kernels, two variants sit behind the [`GemmKernel`]
//! selector: the naive scalar reference (the oracle) and a blocked path
//! reusing the packed panels, the register-tiled `MR x NR` microkernel
//! (AVX2 behind runtime detection, portable fallback), and the full-k
//! no-FMA discipline from `gemm`. The blocked sweep simply **skips every
//! register tile that lies entirely above the diagonal**; tiles straddling
//! it are computed in full and the spilled upper elements are overwritten
//! by the mirror. Parallelism splits `C` into MR-aligned row bands with
//! *triangle-balanced* boundaries (`r_i ≈ m·√(i/bands)`) so each scoped
//! thread owns roughly the same number of lower-triangle flops.
//!
//! The streamed conv-capture path accumulates SYRK contributions
//! chunk-by-chunk over row blocks of the patch matrix; because the chunks
//! partition `kk` in ascending input order and the kernels accumulate into
//! the live `C`, chunked accumulation is bitwise identical to one shot.
//! [`syrk_chunk_rows`] (env `KAISA_SYRK_CHUNK`) bounds those chunks.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::gemm::{
    gemm_kernel, microkernel, num_threads, pack_a, pack_b, use_blocked, GemmKernel, Layout, MC, MR,
    NR, PAR_THRESHOLD,
};

/// Whether factor-statistic Gram products route through the SYRK fast path
/// (env `KAISA_SYRK`, [`set_syrk_mode`], or the `syrk` config knob in
/// `kaisa-core`). Both settings produce bitwise-identical results; `off`
/// exists as the permanent full-GEMM oracle lane for CI and bisection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyrkMode {
    /// Lower-triangle SYRK + mirror (half the multiply-adds). The default.
    #[default]
    On,
    /// Full-GEMM path, exactly as before the SYRK kernel existed.
    Off,
}

impl SyrkMode {
    /// Stable lowercase name (the `KAISA_SYRK` vocabulary).
    pub fn as_str(self) -> &'static str {
        match self {
            SyrkMode::On => "on",
            SyrkMode::Off => "off",
        }
    }
}

impl std::fmt::Display for SyrkMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for SyrkMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "on" | "1" | "true" => Ok(SyrkMode::On),
            "off" | "0" | "false" => Ok(SyrkMode::Off),
            other => Err(format!("unknown SYRK mode '{other}' (on|off)")),
        }
    }
}

/// Process-wide programmatic override; 0 = unset (fall back to the env).
static MODE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn env_mode() -> SyrkMode {
    static ENV: OnceLock<SyrkMode> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("KAISA_SYRK").ok().and_then(|v| v.parse().ok()).unwrap_or(SyrkMode::On)
    })
}

/// Override the process-wide SYRK mode (wins over the `KAISA_SYRK`
/// environment variable).
pub fn set_syrk_mode(mode: SyrkMode) {
    let code = match mode {
        SyrkMode::On => 1,
        SyrkMode::Off => 2,
    };
    MODE_OVERRIDE.store(code, Ordering::Relaxed);
}

/// The currently selected SYRK mode: the last [`set_syrk_mode`] value, else
/// `KAISA_SYRK`, else [`SyrkMode::On`].
pub fn syrk_mode() -> SyrkMode {
    match MODE_OVERRIDE.load(Ordering::Relaxed) {
        1 => SyrkMode::On,
        2 => SyrkMode::Off,
        _ => env_mode(),
    }
}

/// Default rows per streamed im2col chunk (`KAISA_SYRK_CHUNK` unset).
const DEFAULT_CHUNK_ROWS: usize = 256;

/// Process-wide programmatic chunk override; 0 = unset.
static CHUNK_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn env_chunk_rows() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("KAISA_SYRK_CHUNK")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_CHUNK_ROWS)
    })
}

/// Rows per streamed im2col chunk for conv factor capture: the last nonzero
/// [`set_syrk_chunk_rows`] value, else `KAISA_SYRK_CHUNK`, else 256. The
/// chunk size bounds the per-layer capture scratch (`chunk × a_dim` floats)
/// and never changes results — chunked SYRK accumulation in input order is
/// bitwise identical to one shot.
pub fn syrk_chunk_rows() -> usize {
    match CHUNK_OVERRIDE.load(Ordering::Relaxed) {
        0 => env_chunk_rows(),
        n => n,
    }
}

/// Override the streamed-capture chunk size (0 resets to the env/default).
pub fn set_syrk_chunk_rows(rows: usize) {
    CHUNK_OVERRIDE.store(rows, Ordering::Relaxed);
}

/// `C[m x m] += AᵀA` where `A` is stored `[k x m]` row-major — the
/// symmetric-output counterpart of [`gemm_tn_with`](crate::gemm_tn_with) with `b = a`. Only
/// the lower triangle is computed; the strict upper triangle is then
/// overwritten with an exact bit copy of the lower. The result (including
/// accumulation into a symmetric pre-existing `C`) is bitwise identical to
/// `gemm_tn(m, k, m, a, a, c)`. Kernel selection follows the process-wide
/// [`crate::gemm_kernel`].
pub fn syrk_tn(m: usize, k: usize, a: &[f32], c: &mut [f32]) {
    syrk_tn_with(gemm_kernel(), m, k, a, c);
}

/// [`syrk_tn`] with an explicit kernel selection (benchmarks and the
/// property suite pin both paths without touching the process-wide knob).
pub fn syrk_tn_with(kernel: GemmKernel, m: usize, k: usize, a: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(c.len(), m * m);
    if m == 0 || k == 0 {
        // Match gemm_tn: C untouched, and in particular *not* mirrored —
        // a k=0 update must leave arbitrary caller data intact.
        return;
    }
    if use_blocked(kernel, m, k, m) {
        blocked_syrk(m, k, a, c);
    } else if m * m * k / 2 >= PAR_THRESHOLD && m > 1 {
        par_triangle_bands(m, c, |r0, rows, band| naive_syrk_rows(r0, rows, m, k, a, band));
    } else {
        naive_syrk_rows(0, m, m, k, a, c);
    }
    mirror_lower(m, c);
}

/// Naive lower-triangle reference: for each `C[i, j]` with `j ≤ i`, the
/// exact `kk`-ascending mul-then-add chain of `gemm_tn_serial_range` —
/// zero terms accumulated, never skipped (IEEE NaN/Inf propagation).
fn naive_syrk_rows(r0: usize, rows: usize, m: usize, k: usize, a: &[f32], c: &mut [f32]) {
    for kk in 0..k {
        let a_row = &a[kk * m..(kk + 1) * m];
        for i in 0..rows {
            let gi = r0 + i;
            let aik = a_row[gi];
            let c_row = &mut c[i * m..i * m + gi + 1];
            for (cj, &bj) in c_row.iter_mut().zip(&a_row[..gi + 1]) {
                *cj += aik * bj;
            }
        }
    }
}

/// Copy the lower triangle into the strict upper triangle, bit for bit.
fn mirror_lower(m: usize, c: &mut [f32]) {
    for i in 0..m {
        for j in i + 1..m {
            c[i * m + j] = c[j * m + i];
        }
    }
}

/// MR-aligned band boundaries `0 = r_0 < r_1 < … < r_b = m` with roughly
/// equal lower-triangle area per band: `r_i ≈ m·√(i/b)` rounded to a
/// multiple of `MR`, deduplicated. The split never affects results — each
/// `C` row's update chain is confined to its own band.
fn triangle_bands(m: usize) -> Vec<usize> {
    let bands = (num_threads() * 2).max(1);
    let mut bounds = vec![0usize];
    for i in 1..bands {
        let frac = (i as f64 / bands as f64).sqrt();
        let r = ((m as f64 * frac / MR as f64).round() as usize * MR).min(m);
        if r > *bounds.last().unwrap() {
            bounds.push(r);
        }
    }
    if *bounds.last().unwrap() < m {
        bounds.push(m);
    }
    bounds
}

/// Run `kernel(r0, rows, c_band)` over triangle-balanced row bands of `C`
/// on scoped worker threads (the diagonal-block scheduler).
fn par_triangle_bands<F>(m: usize, c: &mut [f32], kernel: F)
where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    let bounds = triangle_bands(m);
    std::thread::scope(|scope| {
        let mut rest: &mut [f32] = c;
        for w in bounds.windows(2) {
            let (r0, r1) = (w[0], w[1]);
            let (band, tail) = std::mem::take(&mut rest).split_at_mut((r1 - r0) * m);
            rest = tail;
            let kernel = &kernel;
            scope.spawn(move || kernel(r0, r1 - r0, band));
        }
    });
}

/// Blocked SYRK driver: pack `A` once as the shared B-side panels, then
/// sweep triangle-balanced row bands.
fn blocked_syrk(m: usize, k: usize, a: &[f32], c: &mut [f32]) {
    let bp = pack_b(Layout::Tn, k, m, a);
    if m * m * k / 2 >= PAR_THRESHOLD && m > 1 {
        let bp = &bp;
        par_triangle_bands(m, c, |r0, rows, band| {
            blocked_syrk_rows(r0, rows, m, k, a, bp, band);
        });
    } else {
        blocked_syrk_rows(0, m, m, k, a, &bp, c);
    }
}

/// Serial blocked SYRK over `rows` rows of `C` starting at logical row
/// `r0` (`c` is the band's slice). Identical tile staging and microkernel
/// to `gemm::blocked_rows` (Tn association: `C` is the live accumulator),
/// except column panels entirely above the diagonal of a tile row are
/// skipped — their elements are produced by the mirror instead.
fn blocked_syrk_rows(
    r0: usize,
    rows: usize,
    m: usize,
    k: usize,
    a: &[f32],
    bp: &[f32],
    c: &mut [f32],
) {
    let n_panels = m.div_ceil(NR);
    let mut ap = vec![0.0f32; MC.min(rows).div_ceil(MR) * MR * k];
    let mut tile = [0.0f32; MR * NR];
    for ic in (0..rows).step_by(MC) {
        let mc = MC.min(rows - ic);
        let m_panels = mc.div_ceil(MR);
        pack_a(Layout::Tn, r0 + ic, mc, m, k, a, &mut ap[..m_panels * MR * k]);
        for ip in 0..m_panels {
            let i0 = ip * MR;
            let mr = MR.min(mc - i0);
            let a_panel = &ap[ip * k * MR..(ip + 1) * k * MR];
            let c0 = ic + i0;
            // Last column index this tile row must cover is its last
            // (global) row index: panels strictly right of it are upper-
            // triangle only.
            let jp_last = ((r0 + c0 + mr - 1) / NR).min(n_panels - 1);
            for jp in 0..=jp_last {
                let j0 = jp * NR;
                let nr = NR.min(m - j0);
                let b_panel = &bp[jp * k * NR..(jp + 1) * k * NR];
                tile.fill(0.0);
                for rr in 0..mr {
                    let src = &c[(c0 + rr) * m + j0..(c0 + rr) * m + j0 + nr];
                    tile[rr * NR..rr * NR + nr].copy_from_slice(src);
                }
                microkernel(k, a_panel, b_panel, &mut tile);
                for rr in 0..mr {
                    let dst = &mut c[(c0 + rr) * m + j0..(c0 + rr) * m + j0 + nr];
                    dst.copy_from_slice(&tile[rr * NR..rr * NR + nr]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_tn_with;
    use crate::{Matrix, Rng};

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..len).map(|_| rng.next_f32() - 0.5).collect()
    }

    /// Shapes that stress the triangular tiling: unit, sub-tile, exact-tile,
    /// off-by-one around MR/NR/MC, and sizes crossing the parallel and
    /// blocked thresholds.
    const ADVERSARIAL: &[(usize, usize)] = &[
        (1, 1),
        (2, 3),
        (5, 7),
        (6, 8),
        (7, 9),
        (15, 16),
        (16, 17),
        (17, 2),
        (31, 33),
        (47, 33),
        (48, 21),
        (49, 2),
        (64, 64),
        (80, 70),
        (97, 80),
        (128, 200),
    ];

    #[test]
    fn syrk_bitwise_matches_gemm_tn_over_shapes() {
        for &(m, k) in ADVERSARIAL {
            let a = fill(k * m, (m * 1000 + k) as u64);
            for kernel in [GemmKernel::Naive, GemmKernel::Blocked, GemmKernel::Auto] {
                let mut c_gemm = vec![0.0f32; m * m];
                gemm_tn_with(kernel, m, k, m, &a, &a, &mut c_gemm);
                let mut c_syrk = vec![0.0f32; m * m];
                syrk_tn_with(kernel, m, k, &a, &mut c_syrk);
                for (i, (x, y)) in c_syrk.iter().zip(&c_gemm).enumerate() {
                    assert_eq!(x.to_bits(), y.to_bits(), "{kernel} ({m},{k}) element {i}");
                }
            }
        }
    }

    #[test]
    fn syrk_output_is_exactly_symmetric() {
        for &(m, k) in ADVERSARIAL {
            let a = fill(k * m, 0xfeed ^ (m * 31 + k) as u64);
            for kernel in [GemmKernel::Naive, GemmKernel::Blocked] {
                let mut c = vec![0.0f32; m * m];
                syrk_tn_with(kernel, m, k, &a, &mut c);
                for i in 0..m {
                    for j in 0..i {
                        assert_eq!(
                            c[i * m + j].to_bits(),
                            c[j * m + i].to_bits(),
                            "{kernel} ({m},{k}) at ({i},{j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn chunked_accumulation_matches_one_shot() {
        // Streamed capture splits the k dimension into row chunks and
        // accumulates; the chunks partition kk in ascending order, so the
        // result must be bitwise identical to a single call.
        let (m, k) = (19, 57);
        let a = fill(k * m, 99);
        for kernel in [GemmKernel::Naive, GemmKernel::Blocked] {
            let mut c_one = vec![0.0f32; m * m];
            syrk_tn_with(kernel, m, k, &a, &mut c_one);
            for chunk in [1usize, 4, 7, 19, 56, 57, 200] {
                let mut c_chunked = vec![0.0f32; m * m];
                let mut r0 = 0;
                while r0 < k {
                    let len = chunk.min(k - r0);
                    syrk_tn_with(kernel, m, len, &a[r0 * m..(r0 + len) * m], &mut c_chunked);
                    r0 += len;
                }
                for (x, y) in c_chunked.iter().zip(&c_one) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{kernel} chunk={chunk}");
                }
            }
        }
    }

    #[test]
    fn accumulates_into_existing_symmetric_c() {
        // Factor stats accumulate across batches: starting from a symmetric
        // C (the only state the capture layer ever holds), syrk must match
        // gemm_tn's accumulation bitwise.
        let (m, k) = (23, 31);
        let a = fill(k * m, 7);
        let mut base = vec![0.0f32; m * m];
        gemm_tn_with(GemmKernel::Naive, m, k, m, &a, &a, &mut base);
        let b = fill(k * m, 8);
        let mut c_gemm = base.clone();
        gemm_tn_with(GemmKernel::Naive, m, k, m, &b, &b, &mut c_gemm);
        for kernel in [GemmKernel::Naive, GemmKernel::Blocked] {
            let mut c_syrk = base.clone();
            syrk_tn_with(kernel, m, k, &b, &mut c_syrk);
            for (x, y) in c_syrk.iter().zip(&c_gemm) {
                assert_eq!(x.to_bits(), y.to_bits(), "{kernel}");
            }
        }
    }

    #[test]
    fn k_zero_leaves_c_untouched() {
        // gemm_tn early-returns on k=0; syrk must too — including not
        // mirroring, since C may hold arbitrary non-symmetric caller data.
        let m = 4;
        let orig: Vec<f32> = (0..m * m).map(|i| i as f32).collect();
        for kernel in [GemmKernel::Naive, GemmKernel::Blocked] {
            let mut c = orig.clone();
            syrk_tn_with(kernel, m, 0, &[], &mut c);
            assert_eq!(c, orig, "{kernel}");
        }
    }

    #[test]
    fn parallel_triangle_bands_match_serial() {
        // Big enough that m*m*k/2 crosses PAR_THRESHOLD so the banded
        // scheduler runs; must be bitwise identical to the serial sweep.
        let (m, k) = (120, 80);
        assert!(m * m * k / 2 >= PAR_THRESHOLD);
        let a = fill(k * m, 12);
        for kernel in [GemmKernel::Naive, GemmKernel::Blocked] {
            let mut c_par = vec![0.0f32; m * m];
            syrk_tn_with(kernel, m, k, &a, &mut c_par);
            let mut c_serial = vec![0.0f32; m * m];
            naive_syrk_rows(0, m, m, k, &a, &mut c_serial);
            mirror_lower(m, &mut c_serial);
            if kernel == GemmKernel::Naive {
                assert_eq!(c_par, c_serial);
            } else {
                // Blocked vs naive bitwise equality is the stronger check.
                for (x, y) in c_par.iter().zip(&c_serial) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn triangle_bands_are_valid_partitions() {
        for m in [1usize, 5, 6, 48, 97, 256, 1024] {
            let b = triangle_bands(m);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), m);
            assert!(b.windows(2).all(|w| w[0] < w[1]), "m={m}: {b:?}");
            // Interior boundaries are MR-aligned so blocked bands tile fully.
            for &r in &b[1..b.len() - 1] {
                assert_eq!(r % MR, 0, "m={m}: {b:?}");
            }
        }
    }

    #[test]
    fn gram_tn_matches_matmul_tn_bitwise() {
        // The Matrix-level entry the capture layer uses; holds in *both*
        // syrk modes (they are bitwise interchangeable by construction).
        let mut rng = Rng::seed_from_u64(21);
        for &(rows, cols) in &[(1usize, 1usize), (7, 5), (33, 48), (100, 65)] {
            let a = Matrix::randn(rows, cols, 1.0, &mut rng);
            let gram = a.gram_tn();
            let full = a.matmul_tn(&a);
            assert_eq!(gram.shape(), (cols, cols));
            for (x, y) in gram.as_slice().iter().zip(full.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "({rows},{cols})");
            }
        }
    }

    #[test]
    fn mode_parses_and_displays() {
        for (s, mode) in [("on", SyrkMode::On), ("OFF", SyrkMode::Off), ("1", SyrkMode::On)] {
            assert_eq!(s.parse::<SyrkMode>().unwrap(), mode);
        }
        assert!("triangular".parse::<SyrkMode>().is_err());
        assert_eq!(SyrkMode::On.to_string(), "on");
        assert_eq!(SyrkMode::Off.to_string(), "off");
    }

    #[test]
    fn chunk_rows_default_is_positive() {
        assert!(syrk_chunk_rows() >= 1);
    }
}
