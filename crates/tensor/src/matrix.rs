//! Row-major dense `f32` matrices.

use crate::f16::quantize_slice_f16;
use crate::gemm;
use crate::{Precision, Rng, ShapeError};

/// A dense row-major matrix of `f32`.
///
/// This is the workhorse type of the whole framework: layer weights,
/// gradients, Kronecker factors, and eigendecompositions are all `Matrix`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Create a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Create a matrix from a row-major data vector.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Create a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Matrix with i.i.d. standard normal entries scaled by `std`.
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut Rng) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for v in m.data.iter_mut() {
            *v = rng.normal() * std;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Bytes required to store this matrix at the given precision.
    pub fn size_bytes(&self, precision: Precision) -> usize {
        self.numel() * precision.bytes_per_element()
    }

    /// Read element `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Write element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = value;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// The underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying row-major data, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the underlying data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Set every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Return the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        // Blocked transpose for cache friendliness.
        const B: usize = 32;
        for rb in (0..self.rows).step_by(B) {
            for cb in (0..self.cols).step_by(B) {
                for r in rb..(rb + B).min(self.rows) {
                    for c in cb..(cb + B).min(self.cols) {
                        t.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        t
    }

    /// `self @ other` (no transposition).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.try_matmul(other).expect("matmul shape mismatch")
    }

    /// Shape-checked `self @ other`.
    pub fn try_matmul(&self, other: &Matrix) -> crate::Result<Matrix> {
        if self.cols != other.rows {
            return Err(ShapeError::new(format!(
                "matmul: ({}, {}) @ ({}, {})",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        gemm::gemm_nn(self.rows, self.cols, other.cols, &self.data, &other.data, &mut out.data);
        Ok(out)
    }

    /// `selfᵀ @ other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn: ({}, {})ᵀ @ ({}, {})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        gemm::gemm_tn(self.cols, self.rows, other.cols, &self.data, &other.data, &mut out.data);
        out
    }

    /// `selfᵀ @ self` — the K-FAC factor-statistic Gram product.
    ///
    /// Routes through the symmetric rank-k kernel ([`crate::syrk_tn`])
    /// when the process-wide SYRK mode is on (the default): only the lower
    /// triangle is computed and mirrored, bitwise identical to
    /// `self.matmul_tn(self)`. With `KAISA_SYRK=off` it *is* exactly
    /// `self.matmul_tn(self)`, so flipping the knob never perturbs the
    /// training trajectory.
    pub fn gram_tn(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        if crate::syrk_mode() == crate::SyrkMode::On {
            crate::syrk_tn(self.cols, self.rows, &self.data, &mut out.data);
        } else {
            gemm::gemm_tn(self.cols, self.rows, self.cols, &self.data, &self.data, &mut out.data);
        }
        out
    }

    /// `self @ otherᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt: ({}, {}) @ ({}, {})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        gemm::gemm_nt(self.rows, self.cols, other.rows, &self.data, &other.data, &mut out.data);
        out
    }

    /// Elementwise `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// Elementwise `self -= other`.
    pub fn sub_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "sub_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= *b;
        }
    }

    /// `self = alpha * other + beta * self` (BLAS-style axpby).
    pub fn axpby(&mut self, alpha: f32, other: &Matrix, beta: f32) {
        assert_eq!(self.shape(), other.shape(), "axpby shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a = alpha * *b + beta * *a;
        }
    }

    /// Scale every element by `s`.
    pub fn scale(&mut self, s: f32) {
        self.data.iter_mut().for_each(|v| *v *= s);
    }

    /// Return a scaled copy.
    pub fn scaled(&self, s: f32) -> Matrix {
        let mut m = self.clone();
        m.scale(s);
        m
    }

    /// Elementwise (Hadamard) product, in place.
    pub fn hadamard_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a *= *b;
        }
    }

    /// Elementwise division, in place.
    pub fn div_assign_elem(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "div shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a /= *b;
        }
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in self.data.iter_mut() {
            *v = f(*v);
        }
    }

    /// Return a copy with `f` applied elementwise.
    pub fn map(&self, f: impl FnMut(f32) -> f32) -> Matrix {
        let mut m = self.clone();
        m.map_inplace(f);
        m
    }

    /// Add `value` to every diagonal element (Tikhonov damping `A + γI`).
    pub fn add_diag(&mut self, value: f32) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self.data[i * self.cols + i] += value;
        }
    }

    /// Symmetrize in place: `self = (self + selfᵀ) / 2`. Requires square.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        let n = self.rows;
        for r in 0..n {
            for c in (r + 1)..n {
                let avg = 0.5 * (self.data[r * n + c] + self.data[c * n + r]);
                self.data[r * n + c] = avg;
                self.data[c * n + r] = avg;
            }
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.numel() as f32
        }
    }

    /// Trace (sum of diagonal), defined for any shape as min-dim diagonal.
    pub fn trace(&self) -> f32 {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self.data[i * self.cols + i]).sum()
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f32 {
        self.data.iter().map(|v| (*v as f64) * (*v as f64)).sum::<f64>().sqrt() as f32
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Dot product treating both matrices as flat vectors.
    pub fn dot(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "dot shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (*a as f64) * (*b as f64)).sum::<f64>()
            as f32
    }

    /// Outer product `col_vec @ row_vecᵀ` of two vectors.
    pub fn outer(col_vec: &[f32], row_vec: &[f32]) -> Matrix {
        let mut m = Matrix::zeros(col_vec.len(), row_vec.len());
        for (r, &a) in col_vec.iter().enumerate() {
            let row = m.row_mut(r);
            for (c, &b) in row_vec.iter().enumerate() {
                row[c] = a * b;
            }
        }
        m
    }

    /// Quantize the stored values to the given precision (round-trip through
    /// the narrower format). `Fp32` is a no-op.
    pub fn quantize(&mut self, precision: Precision) {
        if precision == Precision::Fp16 {
            quantize_slice_f16(&mut self.data);
        }
    }

    /// Maximum absolute difference from `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data.iter().zip(&other.data).fold(0.0f32, |m, (a, b)| m.max((a - b).abs()))
    }

    /// True if all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Extract a contiguous block of rows `[start, end)` as a new matrix.
    pub fn rows_slice(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows);
        Matrix::from_vec(
            end - start,
            self.cols,
            self.data[start * self.cols..end * self.cols].to_vec(),
        )
    }

    /// Vertically stack two matrices with equal column counts.
    pub fn vstack(top: &Matrix, bottom: &Matrix) -> Matrix {
        assert_eq!(top.cols, bottom.cols, "vstack column mismatch");
        let mut data = Vec::with_capacity(top.numel() + bottom.numel());
        data.extend_from_slice(&top.data);
        data.extend_from_slice(&bottom.data);
        Matrix::from_vec(top.rows + bottom.rows, top.cols, data)
    }

    /// Append a constant column (used to fold biases into K-FAC `A` factors:
    /// the activation is augmented with a trailing 1).
    pub fn append_ones_column(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols + 1);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols] = 1.0;
        }
        out
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_show = 8;
        for r in 0..self.rows.min(max_show) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(max_show) {
                write!(f, "{:>10.4} ", self.get(r, c))?;
            }
            if self.cols > max_show {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > max_show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
        a.shape() == b.shape() && a.max_abs_diff(b) <= tol
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = Rng::seed_from_u64(3);
        let a = Matrix::randn(5, 7, 1.0, &mut rng);
        let i5 = Matrix::identity(5);
        let i7 = Matrix::identity(7);
        assert!(approx_eq(&i5.matmul(&a), &a, 1e-6));
        assert!(approx_eq(&a.matmul(&i7), &a, 1e-6));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = Rng::seed_from_u64(4);
        let a = Matrix::randn(13, 7, 1.0, &mut rng);
        let b = Matrix::randn(13, 9, 1.0, &mut rng);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert!(approx_eq(&fast, &slow, 1e-4));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = Rng::seed_from_u64(5);
        let a = Matrix::randn(6, 11, 1.0, &mut rng);
        let b = Matrix::randn(8, 11, 1.0, &mut rng);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert!(approx_eq(&fast, &slow, 1e-4));
    }

    #[test]
    fn matmul_large_parallel_matches_serial_reference() {
        // Exceeds the parallel kernel threshold; verify against naive.
        let mut rng = Rng::seed_from_u64(6);
        let a = Matrix::randn(150, 90, 0.5, &mut rng);
        let b = Matrix::randn(90, 120, 0.5, &mut rng);
        let c = a.matmul(&b);
        // Naive reference.
        let mut expect = Matrix::zeros(150, 120);
        for i in 0..150 {
            for k in 0..90 {
                let aik = a.get(i, k);
                for j in 0..120 {
                    expect.set(i, j, expect.get(i, j) + aik * b.get(k, j));
                }
            }
        }
        assert!(approx_eq(&c, &expect, 1e-3));
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng::seed_from_u64(7);
        let a = Matrix::randn(41, 67, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn try_matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(a.try_matmul(&b).is_err());
    }

    #[test]
    fn add_diag_is_tikhonov() {
        let mut a = Matrix::zeros(3, 3);
        a.add_diag(0.5);
        assert!(approx_eq(&a, &Matrix::identity(3).scaled(0.5), 0.0));
    }

    #[test]
    fn symmetrize_produces_symmetric() {
        let mut rng = Rng::seed_from_u64(8);
        let mut a = Matrix::randn(10, 10, 1.0, &mut rng);
        a.symmetrize();
        assert!(approx_eq(&a, &a.transpose(), 1e-7));
    }

    #[test]
    fn outer_product_shape_and_values() {
        let m = Matrix::outer(&[1., 2.], &[3., 4., 5.]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.as_slice(), &[3., 4., 5., 6., 8., 10.]);
    }

    #[test]
    fn append_ones_column_works() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = a.append_ones_column();
        assert_eq!(b.as_slice(), &[1., 2., 1., 3., 4., 1.]);
    }

    #[test]
    fn quantize_fp16_reduces_precision() {
        let mut a = Matrix::from_vec(1, 2, vec![1.0 + 1e-4, 1000.25]);
        a.quantize(Precision::Fp16);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 1), 1000.0);
    }

    #[test]
    fn frob_norm_known() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.frob_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn vstack_and_rows_slice_roundtrip() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Matrix::from_vec(1, 2, vec![5., 6.]);
        let v = Matrix::vstack(&a, &b);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.rows_slice(0, 2), a);
        assert_eq!(v.rows_slice(2, 3), b);
    }
}
