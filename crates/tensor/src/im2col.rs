//! im2col / col2im lowering for convolution.
//!
//! Convolution is lowered to GEMM: every receptive-field patch of the input
//! becomes one row of a patch matrix of shape
//! `(N * H_out * W_out) x (C_in * KH * KW)`. This is also exactly the
//! activation matrix K-FAC's `A` factor is computed from for Conv2d layers
//! (Grosse & Martens, "A Kronecker-factored approximate Fisher matrix for
//! convolution layers").

use crate::{Matrix, Tensor4};

/// Geometry of a 2-D convolution: kernel, stride, and zero-padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeom {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride along height.
    pub sh: usize,
    /// Stride along width.
    pub sw: usize,
    /// Zero padding along height (both sides).
    pub ph: usize,
    /// Zero padding along width (both sides).
    pub pw: usize,
}

impl Conv2dGeom {
    /// Square kernel with equal stride and padding on both axes.
    pub fn square(k: usize, stride: usize, pad: usize) -> Self {
        Conv2dGeom { kh: k, kw: k, sh: stride, sw: stride, ph: pad, pw: pad }
    }

    /// Output spatial size for an input of `(h, w)`.
    pub fn out_shape(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.ph - self.kh) / self.sh + 1;
        let ow = (w + 2 * self.pw - self.kw) / self.sw + 1;
        (oh, ow)
    }
}

/// Lower an NCHW input to the patch matrix.
///
/// Output shape: `(n * oh * ow) x (c * kh * kw)`; row `((n*oh)+oy)*ow+ox`
/// holds the receptive field of output pixel `(oy, ox)` of image `n`,
/// channel-major then kernel-row then kernel-col.
pub fn im2col(input: &Tensor4, geom: &Conv2dGeom) -> Matrix {
    let (n, c, h, w) = input.shape();
    let (oh, ow) = geom.out_shape(h, w);
    let patch_len = c * geom.kh * geom.kw;
    let mut out = Matrix::zeros(n * oh * ow, patch_len);
    im2col_rows(input, geom, 0, n * oh * ow, &mut out);
    out
}

/// Lower a contiguous block of patch-matrix rows — rows
/// `[row0, row0 + nrows)` of the full [`im2col`] output — into the first
/// `nrows` rows of `out`. Only the leading `c * kh * kw` columns of each
/// destination row are written (padding positions are written as explicit
/// zeros, so a reused scratch needs no clearing); any extra columns —
/// e.g. a bias ones-column appended by the caller — are left untouched.
///
/// This is the streamed-capture building block: the K-FAC conv `A` factor
/// accumulates SYRK contributions chunk-by-chunk without ever
/// materializing the full patch matrix.
pub fn im2col_rows(
    input: &Tensor4,
    geom: &Conv2dGeom,
    row0: usize,
    nrows: usize,
    out: &mut Matrix,
) {
    let (n, c, h, w) = input.shape();
    let (oh, ow) = geom.out_shape(h, w);
    let patch_len = c * geom.kh * geom.kw;
    assert!(row0 + nrows <= n * oh * ow, "im2col_rows: row range out of bounds");
    assert!(out.rows() >= nrows, "im2col_rows: scratch has too few rows");
    assert!(out.cols() >= patch_len, "im2col_rows: scratch rows too short");

    for r in 0..nrows {
        let row_idx = row0 + r;
        let ox = row_idx % ow;
        let rest = row_idx / ow;
        let oy = rest % oh;
        let img = rest / oh;
        let row = &mut out.row_mut(r)[..patch_len];
        let mut col = 0usize;
        for ch in 0..c {
            for ky in 0..geom.kh {
                let iy = (oy * geom.sh + ky) as isize - geom.ph as isize;
                for kx in 0..geom.kw {
                    let ix = (ox * geom.sw + kx) as isize - geom.pw as isize;
                    row[col] = if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                        input.get(img, ch, iy as usize, ix as usize)
                    } else {
                        0.0
                    };
                    col += 1;
                }
            }
        }
    }
}

/// Scatter a patch-matrix gradient back to an NCHW input gradient
/// (the adjoint of [`im2col`]): overlapping patches accumulate.
pub fn col2im(
    patches: &Matrix,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    geom: &Conv2dGeom,
) -> Tensor4 {
    let (oh, ow) = geom.out_shape(h, w);
    assert_eq!(patches.rows(), n * oh * ow, "col2im row count mismatch");
    assert_eq!(patches.cols(), c * geom.kh * geom.kw, "col2im patch length mismatch");
    let mut out = Tensor4::zeros(n, c, h, w);

    for img in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = patches.row((img * oh + oy) * ow + ox);
                let mut col = 0usize;
                for ch in 0..c {
                    for ky in 0..geom.kh {
                        let iy = (oy * geom.sh + ky) as isize - geom.ph as isize;
                        for kx in 0..geom.kw {
                            let ix = (ox * geom.sw + kx) as isize - geom.pw as isize;
                            if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                let v = out.get(img, ch, iy as usize, ix as usize) + row[col];
                                out.set(img, ch, iy as usize, ix as usize, v);
                            }
                            col += 1;
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn out_shape_known_cases() {
        let g = Conv2dGeom::square(3, 1, 1);
        assert_eq!(g.out_shape(8, 8), (8, 8)); // "same" conv
        let g2 = Conv2dGeom::square(3, 2, 1);
        assert_eq!(g2.out_shape(8, 8), (4, 4));
        let g3 = Conv2dGeom::square(1, 1, 0);
        assert_eq!(g3.out_shape(5, 7), (5, 7));
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no pad: patch matrix is just a channel-major
        // pixel list.
        let mut t = Tensor4::zeros(1, 2, 2, 2);
        for (i, v) in t.as_mut_slice().iter_mut().enumerate() {
            *v = i as f32;
        }
        let g = Conv2dGeom::square(1, 1, 0);
        let p = im2col(&t, &g);
        assert_eq!(p.shape(), (4, 2));
        // Pixel (0,0): channels 0 and 1 -> values 0 and 4.
        assert_eq!(p.row(0), &[0.0, 4.0]);
        assert_eq!(p.row(3), &[3.0, 7.0]);
    }

    #[test]
    fn im2col_padding_zeroes_border() {
        let t = Tensor4::from_vec(1, 1, 2, 2, vec![1., 2., 3., 4.]);
        let g = Conv2dGeom::square(3, 1, 1);
        let p = im2col(&t, &g);
        assert_eq!(p.shape(), (4, 9));
        // Output (0,0): top-left 3x3 window centered at (0,0); corners padded.
        assert_eq!(p.row(0), &[0., 0., 0., 0., 1., 2., 0., 3., 4.]);
    }

    #[test]
    fn conv_via_im2col_matches_direct() {
        // Direct convolution vs im2col+GEMM for a random case.
        let mut rng = Rng::seed_from_u64(9);
        let x = Tensor4::randn(2, 3, 5, 5, 1.0, &mut rng);
        let g = Conv2dGeom::square(3, 1, 1);
        let c_out = 4;
        // Weights: (c_out, c_in*kh*kw)
        let wmat = Matrix::randn(c_out, 3 * 9, 0.2, &mut rng);
        let patches = im2col(&x, &g);
        let y = patches.matmul_nt(&wmat); // (n*oh*ow, c_out)

        let (oh, ow) = g.out_shape(5, 5);
        for img in 0..2 {
            for co in 0..c_out {
                for oy in 0..oh {
                    for ox in 0..ow {
                        // Direct conv.
                        let mut acc = 0.0f32;
                        let mut wi = 0usize;
                        for ci in 0..3 {
                            for ky in 0..3 {
                                for kx in 0..3 {
                                    let iy = oy as isize + ky as isize - 1;
                                    let ix = ox as isize + kx as isize - 1;
                                    if (0..5).contains(&iy) && (0..5).contains(&ix) {
                                        acc += x.get(img, ci, iy as usize, ix as usize)
                                            * wmat.get(co, wi);
                                    }
                                    wi += 1;
                                }
                            }
                        }
                        let got = y.get((img * oh + oy) * ow + ox, co);
                        assert!((got - acc).abs() < 1e-4, "mismatch at {img},{co},{oy},{ox}");
                    }
                }
            }
        }
    }

    #[test]
    fn im2col_rows_chunks_concatenate_to_full() {
        // Streaming arbitrary row chunks through a reused (oversized,
        // dirty) scratch reproduces the full patch matrix exactly.
        let mut rng = Rng::seed_from_u64(13);
        let x = Tensor4::randn(2, 3, 5, 4, 1.0, &mut rng);
        let g = Conv2dGeom::square(3, 2, 1);
        let full = im2col(&x, &g);
        let rows = full.rows();
        for chunk in [1usize, 3, 5, rows, rows + 7] {
            // One extra column simulates the bias ones-column the capture
            // path appends: it must survive every chunk untouched.
            let mut scratch = Matrix::zeros(chunk.min(rows), full.cols() + 1);
            for r in 0..scratch.rows() {
                scratch.row_mut(r)[full.cols()] = 1.0;
            }
            let mut r0 = 0;
            while r0 < rows {
                let len = chunk.min(rows - r0);
                im2col_rows(&x, &g, r0, len, &mut scratch);
                for r in 0..len {
                    assert_eq!(
                        &scratch.row(r)[..full.cols()],
                        full.row(r0 + r),
                        "chunk={chunk} r0={r0} r={r}"
                    );
                    assert_eq!(scratch.row(r)[full.cols()], 1.0);
                }
                r0 += len;
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), p> == <x, col2im(p)> for random x, p — the defining
        // property of the adjoint, which is what backprop requires.
        let mut rng = Rng::seed_from_u64(10);
        let x = Tensor4::randn(2, 2, 4, 4, 1.0, &mut rng);
        let g = Conv2dGeom::square(3, 2, 1);
        let px = im2col(&x, &g);
        let p = Matrix::randn(px.rows(), px.cols(), 1.0, &mut rng);
        let lhs = px.dot(&p);
        let back = col2im(&p, 2, 2, 4, 4, &g);
        let rhs: f32 = x.as_slice().iter().zip(back.as_slice()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "lhs={lhs} rhs={rhs}");
    }
}
