//! Elementwise slice kernels shared across the framework.
//!
//! These operate on plain `&[f32]` so optimizers and collectives can work on
//! flattened parameter buffers without committing to a matrix shape.

/// `y += alpha * x` (BLAS axpy).
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Elementwise `y = x`.
pub fn copy(x: &[f32], y: &mut [f32]) {
    y.copy_from_slice(x);
}

/// Scale a buffer in place.
pub fn scale(s: f32, x: &mut [f32]) {
    for v in x.iter_mut() {
        *v *= s;
    }
}

/// Dot product in f64 accumulation.
pub fn dot(x: &[f32], y: &[f32]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| (*a as f64) * (*b as f64)).sum()
}

/// Euclidean norm with f64 accumulation.
pub fn norm2(x: &[f32]) -> f64 {
    dot(x, x).sqrt()
}

/// Sum with f64 accumulation.
pub fn sum(x: &[f32]) -> f64 {
    x.iter().map(|&v| v as f64).sum()
}

/// Elementwise maximum of absolute values.
pub fn max_abs(x: &[f32]) -> f32 {
    x.iter().fold(0.0f32, |m, v| m.max(v.abs()))
}

/// In-place ReLU.
pub fn relu(x: &mut [f32]) {
    for v in x.iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// In-place sigmoid.
pub fn sigmoid(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v = 1.0 / (1.0 + (-*v).exp());
    }
}

/// Numerically-stable softmax over each row of a `rows x cols` buffer.
pub fn softmax_rows(buf: &mut [f32], rows: usize, cols: usize) {
    debug_assert_eq!(buf.len(), rows * cols);
    for r in 0..rows {
        let row = &mut buf[r * cols..(r + 1) * cols];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut denom = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            denom += *v;
        }
        let inv = 1.0 / denom;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// GELU activation (tanh approximation, as used by BERT).
pub fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of the tanh-approximated GELU.
pub fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_known() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let mut buf = vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        softmax_rows(&mut buf, 2, 3);
        for r in 0..2 {
            let s: f32 = buf[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Largest logit gets the largest probability.
        assert!(buf[2] > buf[1] && buf[1] > buf[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut a = vec![1000.0, 1001.0, 1002.0];
        softmax_rows(&mut a, 1, 3);
        let mut b = vec![0.0, 1.0, 2.0];
        softmax_rows(&mut b, 1, 3);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
            assert!(x.is_finite());
        }
    }

    #[test]
    fn gelu_matches_reference_points() {
        // Reference values from the tanh-approximation formula.
        assert!((gelu_scalar(0.0) - 0.0).abs() < 1e-7);
        assert!((gelu_scalar(1.0) - 0.841192).abs() < 1e-4);
        assert!((gelu_scalar(-1.0) - (-0.158808)).abs() < 1e-4);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let h = 1e-3;
            let fd = (gelu_scalar(x + h) - gelu_scalar(x - h)) / (2.0 * h);
            let an = gelu_grad_scalar(x);
            assert!((fd - an).abs() < 1e-3, "x={x} fd={fd} an={an}");
        }
    }

    #[test]
    fn norms_known() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-9);
        assert_eq!(max_abs(&[-7.0, 3.0]), 7.0);
    }
}
