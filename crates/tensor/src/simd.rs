//! `std::arch` AVX2 kernels: the 6×16 GEMM microkernel and the 8-lane
//! binary16 quantizer. Every `unsafe` block in the workspace lives in this
//! module.
//!
//! Two contracts govern everything here:
//!
//! 1. **Bitwise equivalence with the scalar reference.** The microkernel
//!    issues a separate `vmulps`/`vaddps` per update — never FMA — because
//!    `a*b + c` fused in one rounding would diverge from the naive kernels'
//!    two-rounding sequence. IEEE 754 operations are lanewise deterministic,
//!    so an 8-lane vector multiply-then-add produces exactly the scalar
//!    result in every lane, and the blocked GEMM stays bit-identical to the
//!    naive loops it is property-tested against. Likewise the f16 quantizer
//!    mirrors [`crate::f16::F16::from_f32`] operation for operation (same
//!    rounding, same non-standard quiet-NaN payload) instead of using F16C
//!    hardware conversions, which quiet signaling NaNs differently.
//! 2. **Runtime dispatch.** Callers gate on [`avx2_available`]; every
//!    `#[target_feature]` function here is only reachable behind that check.
//!
//! The module is compiled only on `x86_64`; other targets take the portable
//! paths in `gemm.rs`/`f16.rs`.

use std::arch::x86_64::*;
use std::sync::OnceLock;

use crate::gemm::{MR, NR};

/// True when the running CPU supports AVX2 (detected once per process).
#[inline]
pub(crate) fn avx2_available() -> bool {
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// AVX2 6×16 register-tiled microkernel: `acc[r][j] += A[r,kk] * B[kk,j]`
/// for `kk` ascending, with `acc` a contiguous `MR x NR` tile.
///
/// `ap` is a packed A panel (`k` groups of `MR` column values), `bp` a packed
/// B panel (`k` rows of `NR` values). The accumulator tile carries whatever
/// the caller staged (C values or zeros); each element receives exactly one
/// `mul` + `add` per `kk`, in ascending `kk` order — the same floating-point
/// sequence as the scalar microkernel and the naive reference loops.
///
/// # Safety-by-construction
/// Callers must only invoke this behind an [`avx2_available`] check (enforced
/// with an `unsafe` block at the single call site); slice bounds are asserted
/// here so the raw-pointer loads below cannot go out of bounds.
#[target_feature(enable = "avx2")]
pub(crate) fn microkernel_6x16_avx2(k: usize, ap: &[f32], bp: &[f32], acc: &mut [f32; MR * NR]) {
    assert!(ap.len() >= k * MR, "packed A panel too short");
    assert!(bp.len() >= k * NR, "packed B panel too short");
    let pa = ap.as_ptr();
    let pb = bp.as_ptr();
    let pc = acc.as_mut_ptr();
    // SAFETY: `acc` is exactly MR*NR = 96 contiguous f32s, so offsets
    // r*NR and r*NR+8 for r < 6 leave 8 in-bounds lanes; `pa`/`pb` offsets
    // stay below the lengths asserted above. Unaligned load/store
    // intrinsics have no alignment requirement.
    unsafe {
        let mut c00 = _mm256_loadu_ps(pc);
        let mut c01 = _mm256_loadu_ps(pc.add(8));
        let mut c10 = _mm256_loadu_ps(pc.add(NR));
        let mut c11 = _mm256_loadu_ps(pc.add(NR + 8));
        let mut c20 = _mm256_loadu_ps(pc.add(2 * NR));
        let mut c21 = _mm256_loadu_ps(pc.add(2 * NR + 8));
        let mut c30 = _mm256_loadu_ps(pc.add(3 * NR));
        let mut c31 = _mm256_loadu_ps(pc.add(3 * NR + 8));
        let mut c40 = _mm256_loadu_ps(pc.add(4 * NR));
        let mut c41 = _mm256_loadu_ps(pc.add(4 * NR + 8));
        let mut c50 = _mm256_loadu_ps(pc.add(5 * NR));
        let mut c51 = _mm256_loadu_ps(pc.add(5 * NR + 8));
        for kk in 0..k {
            let b0 = _mm256_loadu_ps(pb.add(kk * NR));
            let b1 = _mm256_loadu_ps(pb.add(kk * NR + 8));
            // Separate mul + add per row: two roundings, exactly like the
            // scalar `acc += a * b`.
            let a0 = _mm256_set1_ps(*pa.add(kk * MR));
            c00 = _mm256_add_ps(c00, _mm256_mul_ps(a0, b0));
            c01 = _mm256_add_ps(c01, _mm256_mul_ps(a0, b1));
            let a1 = _mm256_set1_ps(*pa.add(kk * MR + 1));
            c10 = _mm256_add_ps(c10, _mm256_mul_ps(a1, b0));
            c11 = _mm256_add_ps(c11, _mm256_mul_ps(a1, b1));
            let a2 = _mm256_set1_ps(*pa.add(kk * MR + 2));
            c20 = _mm256_add_ps(c20, _mm256_mul_ps(a2, b0));
            c21 = _mm256_add_ps(c21, _mm256_mul_ps(a2, b1));
            let a3 = _mm256_set1_ps(*pa.add(kk * MR + 3));
            c30 = _mm256_add_ps(c30, _mm256_mul_ps(a3, b0));
            c31 = _mm256_add_ps(c31, _mm256_mul_ps(a3, b1));
            let a4 = _mm256_set1_ps(*pa.add(kk * MR + 4));
            c40 = _mm256_add_ps(c40, _mm256_mul_ps(a4, b0));
            c41 = _mm256_add_ps(c41, _mm256_mul_ps(a4, b1));
            let a5 = _mm256_set1_ps(*pa.add(kk * MR + 5));
            c50 = _mm256_add_ps(c50, _mm256_mul_ps(a5, b0));
            c51 = _mm256_add_ps(c51, _mm256_mul_ps(a5, b1));
        }
        _mm256_storeu_ps(pc, c00);
        _mm256_storeu_ps(pc.add(8), c01);
        _mm256_storeu_ps(pc.add(NR), c10);
        _mm256_storeu_ps(pc.add(NR + 8), c11);
        _mm256_storeu_ps(pc.add(2 * NR), c20);
        _mm256_storeu_ps(pc.add(2 * NR + 8), c21);
        _mm256_storeu_ps(pc.add(3 * NR), c30);
        _mm256_storeu_ps(pc.add(3 * NR + 8), c31);
        _mm256_storeu_ps(pc.add(4 * NR), c40);
        _mm256_storeu_ps(pc.add(4 * NR + 8), c41);
        _mm256_storeu_ps(pc.add(5 * NR), c50);
        _mm256_storeu_ps(pc.add(5 * NR + 8), c51);
    }
}

/// Quantize a slice through binary16 storage with AVX2, 8 lanes at a time.
///
/// Returns `false` (leaving `values` untouched) when AVX2 is unavailable so
/// the caller can fall back to the scalar path. The vector lanes reproduce
/// [`crate::f16::F16::from_f32`] / [`crate::f16::F16::to_f32`] bit for bit —
/// including the software implementation's `| 1` quiet-NaN payload quirk —
/// which the property suite asserts against the scalar reference.
pub(crate) fn quantize_slice_f16_avx2(values: &mut [f32]) -> bool {
    if !avx2_available() {
        return false;
    }
    let mut chunks = values.chunks_exact_mut(8);
    for chunk in &mut chunks {
        let lanes: &mut [f32; 8] = chunk.try_into().expect("chunks_exact yields 8");
        // SAFETY: AVX2 support was verified by `avx2_available` above.
        unsafe { quantize8_f16_avx2(lanes) };
    }
    for v in chunks.into_remainder() {
        *v = crate::f16::quantize_f16(*v);
    }
    true
}

/// Round 8 `f32` lanes through binary16 storage and back (see
/// [`quantize_slice_f16_avx2`] for the equivalence contract).
#[target_feature(enable = "avx2")]
fn quantize8_f16_avx2(lanes: &mut [f32; 8]) {
    // SAFETY: every intrinsic below is an arithmetic/logical AVX2 operation
    // on owned vector values; the only memory accesses are the unaligned
    // load/store on `lanes`, an in-bounds `[f32; 8]`.
    unsafe {
        let splat = |x: i32| _mm256_set1_epi32(x);
        let zero = _mm256_setzero_si256();
        let ones = _mm256_set1_epi32(-1);

        let bits = _mm256_castps_si256(_mm256_loadu_ps(lanes.as_ptr()));
        let sign = _mm256_and_si256(_mm256_srli_epi32(bits, 16), splat(0x8000));
        let exp = _mm256_and_si256(_mm256_srli_epi32(bits, 23), splat(0xFF));
        let mant = _mm256_and_si256(bits, splat(0x007F_FFFF));
        let unbiased = _mm256_sub_epi32(exp, splat(127));

        // ---- f32 -> f16 bits, mirroring F16::from_f32 case by case. ----
        // Case 1: exp == 0xFF (Inf / NaN) — quiet payload with the
        // software implementation's trailing `| 1`.
        let is_naninf = _mm256_cmpeq_epi32(exp, splat(0xFF));
        let mant_nz = _mm256_xor_si256(_mm256_cmpeq_epi32(mant, zero), ones);
        let payload = _mm256_or_si256(
            splat(0x0200 | 1),
            _mm256_and_si256(_mm256_srli_epi32(mant, 13), splat(0x03FF)),
        );
        let r_naninf = _mm256_or_si256(
            _mm256_or_si256(sign, splat(0x7C00)),
            _mm256_and_si256(payload, mant_nz),
        );

        // Case 2: unbiased >= 16 — saturate to infinity.
        let is_over = _mm256_cmpgt_epi32(unbiased, splat(15));
        let r_over = _mm256_or_si256(sign, splat(0x7C00));

        // Case 3: unbiased >= -14 — normal range, round to nearest even.
        let is_norm = _mm256_cmpgt_epi32(unbiased, splat(-15));
        let half_exp = _mm256_slli_epi32(_mm256_add_epi32(unbiased, splat(15)), 10);
        let mant10_n = _mm256_srli_epi32(mant, 13);
        let round_n = _mm256_and_si256(_mm256_srli_epi32(mant, 12), splat(1));
        let sticky_n = _mm256_and_si256(mant, splat(0x0FFF));
        let out_n = _mm256_or_si256(sign, _mm256_or_si256(half_exp, mant10_n));
        let sticky_or_odd_n = _mm256_or_si256(
            _mm256_xor_si256(_mm256_cmpeq_epi32(sticky_n, zero), ones),
            _mm256_xor_si256(_mm256_cmpeq_epi32(_mm256_and_si256(mant10_n, splat(1)), zero), ones),
        );
        let inc_n = _mm256_and_si256(_mm256_cmpeq_epi32(round_n, splat(1)), sticky_or_odd_n);
        // Subtracting an all-ones mask adds 1 in exactly the lanes that round up.
        let r_norm = _mm256_sub_epi32(out_n, inc_n);

        // Case 4: unbiased >= -25 — subnormal range; per-lane variable
        // shifts of the 24-bit significand. Lanes outside this case produce
        // garbage here (shift counts >= 32 yield 0 for srlv/sllv, never UB)
        // and are discarded by the blend priority below.
        let is_sub = _mm256_cmpgt_epi32(unbiased, splat(-26));
        let full = _mm256_or_si256(splat(0x0080_0000), mant);
        let shift = _mm256_sub_epi32(splat(-1), unbiased); // -unbiased - 14 + 13
        let shift_m1 = _mm256_sub_epi32(shift, splat(1));
        let mant10_s = _mm256_srlv_epi32(full, shift);
        let round_s = _mm256_and_si256(_mm256_srlv_epi32(full, shift_m1), splat(1));
        let sticky_mask = _mm256_sub_epi32(_mm256_sllv_epi32(splat(1), shift_m1), splat(1));
        let sticky_s = _mm256_and_si256(full, sticky_mask);
        let out_s = _mm256_or_si256(sign, mant10_s);
        let sticky_or_odd_s = _mm256_or_si256(
            _mm256_xor_si256(_mm256_cmpeq_epi32(sticky_s, zero), ones),
            _mm256_xor_si256(_mm256_cmpeq_epi32(_mm256_and_si256(mant10_s, splat(1)), zero), ones),
        );
        let inc_s = _mm256_and_si256(_mm256_cmpeq_epi32(round_s, splat(1)), sticky_or_odd_s);
        let r_sub = _mm256_sub_epi32(out_s, inc_s);

        // Case 5: underflow — signed zero. Blend lowest-priority first.
        let mut h = sign;
        h = _mm256_blendv_epi8(h, r_sub, is_sub);
        h = _mm256_blendv_epi8(h, r_norm, is_norm);
        h = _mm256_blendv_epi8(h, r_over, is_over);
        h = _mm256_blendv_epi8(h, r_naninf, is_naninf);

        // ---- f16 bits -> f32, mirroring F16::to_f32. ----
        let hsign = _mm256_slli_epi32(_mm256_and_si256(h, splat(0x8000)), 16);
        let hexp = _mm256_and_si256(_mm256_srli_epi32(h, 10), splat(0x1F));
        let hmant = _mm256_and_si256(h, splat(0x03FF));

        // Normal: rebias the exponent.
        let w_norm = _mm256_or_si256(
            hsign,
            _mm256_or_si256(
                _mm256_slli_epi32(_mm256_add_epi32(hexp, splat(112)), 23),
                _mm256_slli_epi32(hmant, 13),
            ),
        );
        // Inf / NaN.
        let is_hinf = _mm256_cmpeq_epi32(hexp, splat(0x1F));
        let w_inf = _mm256_or_si256(
            hsign,
            _mm256_or_si256(splat(0x7F80_0000u32 as i32), _mm256_slli_epi32(hmant, 13)),
        );
        // Subnormal or zero: the value is exactly mant * 2^-24, and the
        // int→float convert + power-of-two scale is exact, so it matches the
        // scalar normalize-loop bit construction.
        let two_pow_m24 = _mm256_castsi256_ps(splat(0x3380_0000)); // 2^-24
        let f_sub = _mm256_mul_ps(_mm256_cvtepi32_ps(hmant), two_pow_m24);
        let w_sub = _mm256_or_si256(hsign, _mm256_castps_si256(f_sub));
        let is_hzero_exp = _mm256_cmpeq_epi32(hexp, zero);

        let mut w = w_norm;
        w = _mm256_blendv_epi8(w, w_inf, is_hinf);
        w = _mm256_blendv_epi8(w, w_sub, is_hzero_exp);
        _mm256_storeu_ps(lanes.as_mut_ptr(), _mm256_castsi256_ps(w));
    }
}
