//! Storage-precision selection.
//!
//! KAISA adapts its memory footprint and communication volume to the training
//! precision (paper Section 3.3): when AMP/FP16 training is active, Kronecker
//! factors are stored and communicated in half precision, while
//! eigendecompositions are computed in single precision for stability and may
//! optionally be stored back in half precision.

/// Element storage precision for factors, eigendecompositions, and gradients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// IEEE 754 binary32 (single precision).
    #[default]
    Fp32,
    /// IEEE 754 binary16 (half precision), emulated in software for storage
    /// and communication; compute still happens in `f32`.
    Fp16,
}

impl Precision {
    /// Bytes consumed by one element at this precision.
    pub const fn bytes_per_element(self) -> usize {
        match self {
            Precision::Fp32 => 4,
            Precision::Fp16 => 2,
        }
    }

    /// Human-readable name matching the paper's tables ("FP32"/"FP16").
    pub const fn name(self) -> &'static str {
        match self {
            Precision::Fp32 => "FP32",
            Precision::Fp16 => "FP16",
        }
    }

    /// True if values must be rounded through binary16 when stored.
    pub const fn is_half(self) -> bool {
        matches!(self, Precision::Fp16)
    }

    /// Apply this precision's storage rounding to a slice in place: a no-op
    /// for [`Precision::Fp32`], the (SIMD-accelerated) binary16 round-trip
    /// of [`crate::f16::quantize_slice_f16`] for [`Precision::Fp16`].
    pub fn quantize_slice(self, values: &mut [f32]) {
        if self.is_half() {
            crate::f16::quantize_slice_f16(values);
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_sizes() {
        assert_eq!(Precision::Fp32.bytes_per_element(), 4);
        assert_eq!(Precision::Fp16.bytes_per_element(), 2);
    }

    #[test]
    fn names_match_paper_tables() {
        assert_eq!(Precision::Fp32.to_string(), "FP32");
        assert_eq!(Precision::Fp16.to_string(), "FP16");
    }
}
