//! Weight initializers.
//!
//! These follow the initializations the paper's reference implementations
//! use: Kaiming/He for ReLU convolutional stacks (ResNet, U-Net), Xavier for
//! linear classifier heads and transformer blocks.

use crate::{Matrix, Rng};

/// Xavier/Glorot uniform initializer for a `fan_out x fan_in` weight matrix.
pub fn xavier_uniform(fan_out: usize, fan_in: usize, rng: &mut Rng) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Matrix::from_fn(fan_out, fan_in, |_, _| rng.uniform(-limit, limit))
}

/// Kaiming/He normal initializer for ReLU networks.
pub fn kaiming_normal(fan_out: usize, fan_in: usize, rng: &mut Rng) -> Matrix {
    let std = (2.0 / fan_in as f32).sqrt();
    Matrix::randn(fan_out, fan_in, std, rng)
}

/// Scaled initializer for residual branches (scales Kaiming by `gain`).
pub fn scaled_kaiming(fan_out: usize, fan_in: usize, gain: f32, rng: &mut Rng) -> Matrix {
    let std = gain * (2.0 / fan_in as f32).sqrt();
    Matrix::randn(fan_out, fan_in, std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_within_limit() {
        let mut rng = Rng::seed_from_u64(1);
        let w = xavier_uniform(64, 32, &mut rng);
        let limit = (6.0 / 96.0f32).sqrt();
        assert!(w.max_abs() <= limit);
        assert!(w.max_abs() > limit * 0.5, "should use most of the range");
    }

    #[test]
    fn kaiming_std_close_to_theory() {
        let mut rng = Rng::seed_from_u64(2);
        let fan_in = 256;
        let w = kaiming_normal(256, fan_in, &mut rng);
        let mean = w.mean();
        let var = w.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / w.numel() as f32;
        let expected = 2.0 / fan_in as f32;
        assert!((var - expected).abs() / expected < 0.1, "var={var} expected={expected}");
    }
}
