//! Four-dimensional NCHW activation tensors for convolutional layers.

use crate::{Matrix, Rng};

/// A dense 4-D tensor in NCHW layout (batch, channels, height, width).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor4 {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    data: Vec<f32>,
}

impl Tensor4 {
    /// Create an NCHW tensor of zeros.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        Tensor4 { n, c, h, w, data: vec![0.0; n * c * h * w] }
    }

    /// Create from a raw NCHW data vector.
    ///
    /// # Panics
    /// If `data.len() != n*c*h*w`.
    pub fn from_vec(n: usize, c: usize, h: usize, w: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), n * c * h * w, "data length must equal n*c*h*w");
        Tensor4 { n, c, h, w, data }
    }

    /// Tensor with i.i.d. normal entries scaled by `std`.
    pub fn randn(n: usize, c: usize, h: usize, w: usize, std: f32, rng: &mut Rng) -> Self {
        let mut t = Tensor4::zeros(n, c, h, w);
        for v in t.data.iter_mut() {
            *v = rng.normal() * std;
        }
        t
    }

    /// Batch size.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }
    /// Channel count.
    #[inline]
    pub fn c(&self) -> usize {
        self.c
    }
    /// Height.
    #[inline]
    pub fn h(&self) -> usize {
        self.h
    }
    /// Width.
    #[inline]
    pub fn w(&self) -> usize {
        self.w
    }

    /// `(n, c, h, w)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.h, self.w)
    }

    /// Total element count.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Flat index of `(n, c, h, w)`.
    #[inline]
    pub fn idx(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Read one element.
    #[inline]
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.idx(n, c, h, w)]
    }

    /// Write one element.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, value: f32) {
        let i = self.idx(n, c, h, w);
        self.data[i] = value;
    }

    /// Raw NCHW data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Raw NCHW data, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One image (all channels) of the batch as a slice.
    pub fn image(&self, n: usize) -> &[f32] {
        let sz = self.c * self.h * self.w;
        &self.data[n * sz..(n + 1) * sz]
    }

    /// View as a `(n, c*h*w)` matrix (copies the data).
    pub fn flatten_batch(&self) -> Matrix {
        Matrix::from_vec(self.n, self.c * self.h * self.w, self.data.clone())
    }

    /// Rebuild an NCHW tensor from a `(n, c*h*w)` matrix.
    pub fn from_matrix(m: &Matrix, c: usize, h: usize, w: usize) -> Tensor4 {
        assert_eq!(m.cols(), c * h * w, "matrix cols must equal c*h*w");
        Tensor4::from_vec(m.rows(), c, h, w, m.as_slice().to_vec())
    }

    /// Elementwise `self += other`.
    pub fn add_assign(&mut self, other: &Tensor4) {
        assert_eq!(self.shape(), other.shape(), "tensor add shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// Scale all elements.
    pub fn scale(&mut self, s: f32) {
        self.data.iter_mut().for_each(|v| *v *= s);
    }

    /// Apply `f` elementwise in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in self.data.iter_mut() {
            *v = f(*v);
        }
    }

    /// Per-channel mean over batch and spatial dims.
    #[allow(clippy::needless_range_loop)]
    pub fn channel_means(&self) -> Vec<f32> {
        let mut means = vec![0.0f64; self.c];
        for n in 0..self.n {
            for c in 0..self.c {
                let base = (n * self.c + c) * self.h * self.w;
                let s: f64 =
                    self.data[base..base + self.h * self.w].iter().map(|&v| v as f64).sum();
                means[c] += s;
            }
        }
        let denom = (self.n * self.h * self.w) as f64;
        means.iter().map(|&m| (m / denom) as f32).collect()
    }

    /// True if all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_roundtrip() {
        let mut t = Tensor4::zeros(2, 3, 4, 5);
        t.set(1, 2, 3, 4, 7.5);
        assert_eq!(t.get(1, 2, 3, 4), 7.5);
        assert_eq!(t.as_slice()[t.idx(1, 2, 3, 4)], 7.5);
    }

    #[test]
    fn flatten_and_rebuild() {
        let mut rng = Rng::seed_from_u64(1);
        let t = Tensor4::randn(3, 2, 4, 4, 1.0, &mut rng);
        let m = t.flatten_batch();
        assert_eq!(m.shape(), (3, 32));
        let back = Tensor4::from_matrix(&m, 2, 4, 4);
        assert_eq!(back, t);
    }

    #[test]
    fn channel_means_simple() {
        let mut t = Tensor4::zeros(2, 2, 1, 1);
        t.set(0, 0, 0, 0, 1.0);
        t.set(1, 0, 0, 0, 3.0);
        t.set(0, 1, 0, 0, 10.0);
        t.set(1, 1, 0, 0, 20.0);
        let means = t.channel_means();
        assert_eq!(means, vec![2.0, 15.0]);
    }
}
