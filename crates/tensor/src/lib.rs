//! # kaisa-tensor
//!
//! Dense tensor and matrix kernels underpinning the KAISA K-FAC optimizer
//! framework.
//!
//! The crate provides:
//!
//! * [`Matrix`] — a row-major dense `f32` matrix with BLAS-like operations
//!   (Rayon-parallel blocked GEMM, transposes, elementwise kernels).
//! * [`Tensor4`] — an NCHW activation tensor used by convolutional layers,
//!   with [`im2col`]/[`col2im`] lowering.
//! * [`f16`](mod@f16) — a software implementation of IEEE 754 binary16 used to
//!   emulate half-precision *storage and communication* of Kronecker factors
//!   (Section 3.3 of the KAISA paper) on hardware without native fp16.
//! * [`Precision`] — storage-precision selection with byte accounting, the
//!   knob KAISA uses to trade accuracy for memory/bandwidth.
//! * [`Rng`] — a deterministic xoshiro256++ generator so every experiment in
//!   the reproduction is bit-reproducible across runs and rank counts.
//!
//! The crate carries no external BLAS dependency: determinism and
//! algorithmic fidelity come first. `unsafe` is confined to the `simd`
//! module (the `std::arch` AVX2 GEMM microkernel and binary16 quantizer,
//! behind runtime feature detection), where every block carries a
//! `SAFETY:` comment and is property-tested bitwise against the safe
//! scalar reference kernels — which remain the permanent oracle and can be
//! forced process-wide with `KAISA_GEMM_KERNEL=naive`.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(clippy::undocumented_unsafe_blocks)]

pub mod f16;
mod gemm;
mod im2col;
pub mod init;
mod matrix;
pub mod ops;
mod precision;
mod rng;
#[cfg(target_arch = "x86_64")]
mod simd;
mod syrk;
mod tensor4;

pub use f16::F16;
pub use gemm::{
    gemm_kernel, gemm_nn_with, gemm_nt_with, gemm_tn_with, set_gemm_kernel, GemmKernel,
};
pub use im2col::{col2im, im2col, im2col_rows, Conv2dGeom};
pub use matrix::Matrix;
pub use precision::Precision;
pub use rng::Rng;
pub use syrk::{
    set_syrk_chunk_rows, set_syrk_mode, syrk_chunk_rows, syrk_mode, syrk_tn, syrk_tn_with, SyrkMode,
};
pub use tensor4::Tensor4;

/// Convenience result alias for shape-checked tensor operations.
pub type Result<T> = std::result::Result<T, ShapeError>;

/// Error raised when operand shapes are incompatible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    pub message: String,
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shape error: {}", self.message)
    }
}

impl std::error::Error for ShapeError {}

impl ShapeError {
    /// Create a new shape error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}
