//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component of the reproduction (weight init, data
//! synthesis, batch shuffling) draws from this generator so that runs are
//! bit-reproducible for a given seed, independent of thread scheduling. The
//! generator is xoshiro256++ seeded through SplitMix64, the standard
//! recommendation by the xoshiro authors.

/// A deterministic xoshiro256++ pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
    /// Cached second normal variate from Box-Muller.
    spare_normal: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let state =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng { state, spare_normal: None }
    }

    /// Derive an independent child generator (e.g. one per rank) without
    /// correlating streams: mixes the parent's next output with the stream id.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let base = self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        Rng::seed_from_u64(base)
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        self.next_f64() as f32
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, n)` using Lemire's rejection-free-in-practice
    /// multiply-shift with rejection for exactness.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0) is undefined");
        // Rejection sampling on the top bits to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform `usize` index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.next_below(n as u64) as usize
    }

    /// Standard normal variate via Box-Muller (cached pairs).
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z as f32;
        }
        // Avoid log(0).
        let u1 = loop {
            let u = self.next_f64();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        (r * theta.cos()) as f32
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal_scaled(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn next_below_unbiased_small() {
        let mut rng = Rng::seed_from_u64(99);
        let mut counts = [0usize; 5];
        let n = 50_000;
        for _ in 0..n {
            counts[rng.next_below(5) as usize] += 1;
        }
        for &c in &counts {
            let expected = n / 5;
            assert!((c as i64 - expected as i64).unsigned_abs() < (n / 50) as u64, "{counts:?}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(123);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal() as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle should move something");
    }

    #[test]
    fn fork_decorrelates_streams() {
        let mut parent = Rng::seed_from_u64(11);
        let mut c0 = parent.fork(0);
        let mut c1 = parent.fork(1);
        let same = (0..64).filter(|_| c0.next_u64() == c1.next_u64()).count();
        assert_eq!(same, 0);
    }
}
