//! Property-based tests for the tensor kernels: algebraic identities that
//! must hold for arbitrary shapes and values.

use kaisa_tensor::{
    f16, gemm_nn_with, gemm_nt_with, gemm_tn_with, syrk_tn_with, GemmKernel, Matrix, Rng, F16,
};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    (-1e4f32..1e4).prop_filter("finite", |v| v.is_finite())
}

/// Every f32 bit pattern — NaNs (all payloads), ±Inf, subnormals, -0.0 —
/// so the SIMD quantizer is exercised on exactly the inputs where hardware
/// conversions diverge from the software reference.
fn any_bits_f32() -> impl Strategy<Value = f32> {
    any::<u32>().prop_map(f32::from_bits)
}

fn fill(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..len).map(|_| rng.next_f32() - 0.5).collect()
}

fn matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim, any::<u64>()).prop_map(|(r, c, seed)| {
        let mut rng = Rng::seed_from_u64(seed);
        Matrix::randn(r, c, 1.0, &mut rng)
    })
}

proptest! {
    #[test]
    fn f16_roundtrip_is_idempotent(x in finite_f32()) {
        // Quantizing twice equals quantizing once: f16 values are fixed
        // points of the rounding.
        let once = f16::quantize_f16(x);
        let twice = f16::quantize_f16(once);
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }

    #[test]
    fn f16_rounding_is_monotone(a in finite_f32(), b in finite_f32()) {
        // x <= y implies q(x) <= q(y): required so quantized factors stay
        // positive semidefinite-ish (no order inversions on the diagonal).
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(f16::quantize_f16(lo) <= f16::quantize_f16(hi));
    }

    #[test]
    fn f16_relative_error_bounded(x in 1e-3f32..6e4) {
        let q = f16::quantize_f16(x);
        let rel = ((q - x) / x).abs();
        prop_assert!(rel <= 2f32.powi(-11) + 1e-9, "x={} q={} rel={}", x, q, rel);
    }

    #[test]
    fn f16_sign_symmetry(x in finite_f32()) {
        prop_assert_eq!(
            F16::from_f32(-x).to_f32().to_bits(),
            (-F16::from_f32(x).to_f32()).to_bits()
        );
    }

    #[test]
    fn transpose_involution(m in matrix(12)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_transpose_identity(seed in any::<u64>(), n in 1usize..10, k in 1usize..10, p in 1usize..10) {
        // (AB)ᵀ = Bᵀ Aᵀ
        let mut rng = Rng::seed_from_u64(seed);
        let a = Matrix::randn(n, k, 1.0, &mut rng);
        let b = Matrix::randn(k, p, 1.0, &mut rng);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn matmul_tn_nt_consistency(seed in any::<u64>(), n in 1usize..10, k in 1usize..10, p in 1usize..10) {
        let mut rng = Rng::seed_from_u64(seed);
        let a = Matrix::randn(k, n, 1.0, &mut rng);
        let b = Matrix::randn(k, p, 1.0, &mut rng);
        // Aᵀ B via the fused kernel equals the explicit transpose product.
        prop_assert!(a.matmul_tn(&b).max_abs_diff(&a.transpose().matmul(&b)) < 1e-3);
        let c = Matrix::randn(n, k, 1.0, &mut rng);
        let d = Matrix::randn(p, k, 1.0, &mut rng);
        prop_assert!(c.matmul_nt(&d).max_abs_diff(&c.matmul(&d.transpose())) < 1e-3);
    }

    #[test]
    fn gram_matrix_is_symmetric_psd(m in matrix(10)) {
        // aᵀa (the K-FAC A factor construction) is symmetric with
        // nonnegative diagonal and nonnegative quadratic forms.
        let gram = m.matmul_tn(&m);
        prop_assert!(gram.max_abs_diff(&gram.transpose()) < 1e-4);
        for i in 0..gram.rows() {
            prop_assert!(gram.get(i, i) >= -1e-5);
        }
        // Quadratic form with an arbitrary vector.
        let mut rng = Rng::seed_from_u64(7);
        let v = Matrix::randn(gram.rows(), 1, 1.0, &mut rng);
        let q = v.matmul_tn(&gram.matmul(&v)).get(0, 0);
        prop_assert!(q >= -1e-2, "quadratic form {}", q);
    }

    #[test]
    fn symmetrize_is_projection(m in matrix(10)) {
        if m.is_square() {
            let mut s = m.clone();
            s.symmetrize();
            let mut s2 = s.clone();
            s2.symmetrize();
            prop_assert!(s.max_abs_diff(&s2) < 1e-7, "symmetrize must be idempotent");
            prop_assert!(s.max_abs_diff(&s.transpose()) < 1e-7);
        }
    }

    #[test]
    fn rng_streams_reproducible(seed in any::<u64>()) {
        let mut a = Rng::seed_from_u64(seed);
        let mut b = Rng::seed_from_u64(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn blocked_gemm_bitwise_matches_naive(
        m in 1usize..70,
        k in 1usize..70,
        n in 1usize..70,
        seed in any::<u64>(),
        c0 in finite_f32(),
    ) {
        // The blocked SIMD path must be *bitwise* identical to the naive
        // scalar oracle for every layout, shape, and initial-C value: same
        // multiply/add count, same order, no FMA contraction.
        let a = fill(m * k, seed);
        let b = fill(k * n, seed ^ 0x9e3779b97f4a7c15);
        for (run, len_a, len_b) in [(0u8, m * k, k * n), (1, k * m, k * n), (2, m * k, n * k)] {
            let a = &a[..len_a.min(a.len())];
            let b = &b[..len_b.min(b.len())];
            // tn stores A as k x m and nt stores B as n x k: same element
            // counts, so the buffers above cover all three layouts.
            let mut c_blocked = vec![c0; m * n];
            let mut c_naive = c_blocked.clone();
            match run {
                0 => {
                    gemm_nn_with(GemmKernel::Blocked, m, k, n, a, b, &mut c_blocked);
                    gemm_nn_with(GemmKernel::Naive, m, k, n, a, b, &mut c_naive);
                }
                1 => {
                    gemm_tn_with(GemmKernel::Blocked, m, k, n, a, b, &mut c_blocked);
                    gemm_tn_with(GemmKernel::Naive, m, k, n, a, b, &mut c_naive);
                }
                _ => {
                    gemm_nt_with(GemmKernel::Blocked, m, k, n, a, b, &mut c_blocked);
                    gemm_nt_with(GemmKernel::Naive, m, k, n, a, b, &mut c_naive);
                }
            }
            for (x, y) in c_blocked.iter().zip(&c_naive) {
                prop_assert_eq!(x.to_bits(), y.to_bits(),
                    "layout run={} shape=({},{},{})", run, m, k, n);
            }
        }
    }

    #[test]
    fn syrk_bitwise_matches_gemm_tn(
        m in 1usize..48,
        k in 1usize..80,
        seed in any::<u64>(),
        chunk in 1usize..40,
    ) {
        // The SYRK fast path (lower triangle + mirror) must be *bitwise*
        // identical to the full gemm_tn Gram product for every shape and
        // kernel — one shot AND accumulated over arbitrary row chunks in
        // input order (the streamed im2col capture pattern).
        let a = fill(k * m, seed);
        for kernel in [GemmKernel::Naive, GemmKernel::Blocked] {
            let mut c_gemm = vec![0.0f32; m * m];
            gemm_tn_with(kernel, m, k, m, &a, &a, &mut c_gemm);
            let mut c_syrk = vec![0.0f32; m * m];
            syrk_tn_with(kernel, m, k, &a, &mut c_syrk);
            for (x, y) in c_syrk.iter().zip(&c_gemm) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "{} one-shot ({},{})", kernel, m, k);
            }
            let mut c_chunked = vec![0.0f32; m * m];
            let mut r0 = 0;
            while r0 < k {
                let len = chunk.min(k - r0);
                syrk_tn_with(kernel, m, len, &a[r0 * m..(r0 + len) * m], &mut c_chunked);
                r0 += len;
            }
            for (x, y) in c_chunked.iter().zip(&c_gemm) {
                prop_assert_eq!(x.to_bits(), y.to_bits(),
                    "{} chunk={} ({},{})", kernel, chunk, m, k);
            }
        }
    }

    #[test]
    fn syrk_nan_inf_mirror_exactly(
        m in 2usize..32,
        k in 1usize..40,
        seed in any::<u64>(),
        pos_k in any::<u64>(),
        pos_j in any::<u64>(),
        special in 0usize..3,
    ) {
        // A NaN or ±Inf anywhere in A must propagate through the mirrored
        // triangle exactly as through the full GEMM: bitwise-equal output
        // (canonical specials make IEEE multiplication bitwise commutative)
        // and an exactly bit-symmetric result.
        let mut a = fill(k * m, seed);
        let kk = (pos_k % k as u64) as usize;
        let j = (pos_j % m as u64) as usize;
        a[kk * m + j] = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY][special];
        for kernel in [GemmKernel::Naive, GemmKernel::Blocked] {
            let mut c_gemm = vec![0.0f32; m * m];
            gemm_tn_with(kernel, m, k, m, &a, &a, &mut c_gemm);
            let mut c_syrk = vec![0.0f32; m * m];
            syrk_tn_with(kernel, m, k, &a, &mut c_syrk);
            for (x, y) in c_syrk.iter().zip(&c_gemm) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "{} vs gemm", kernel);
            }
            // The poisoned column's row and column are non-finite…
            for i in 0..m {
                prop_assert!(!c_syrk[i * m + j].is_finite(), "col {} row {}", j, i);
                prop_assert!(!c_syrk[j * m + i].is_finite(), "row {} col {}", j, i);
            }
            // …and the whole matrix is exactly symmetric at the bit level.
            for i in 0..m {
                for jj in 0..i {
                    prop_assert_eq!(
                        c_syrk[i * m + jj].to_bits(),
                        c_syrk[jj * m + i].to_bits(),
                        "{} asymmetry at ({},{})", kernel, i, jj
                    );
                }
            }
        }
    }

    #[test]
    fn f16_simd_quantize_matches_scalar(bits in prop::collection::vec(any_bits_f32(), 0..64)) {
        // The AVX2 quantizer must reproduce the software binary16
        // algorithm bit for bit on *every* input class — normals,
        // subnormals, ±Inf, and NaNs with arbitrary payloads (where
        // hardware F16C conversion would differ from the reference).
        let mut simd = bits.clone();
        let mut scalar = bits;
        f16::quantize_slice_f16(&mut simd);
        f16::quantize_slice_f16_scalar(&mut scalar);
        for (i, (a, b)) in simd.iter().zip(&scalar).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "lane {}", i);
        }
    }

    #[test]
    fn shuffle_preserves_multiset(seed in any::<u64>(), n in 1usize..50) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut v: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}
