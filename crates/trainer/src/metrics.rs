//! Training records: per-epoch metrics and time-to-convergence.

use kaisa_core::StageTimes;

/// Metrics for one training epoch.
#[derive(Debug, Clone)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f32,
    /// Mean training metric over the epoch.
    pub train_metric: f32,
    /// Validation loss after the epoch.
    pub val_loss: f32,
    /// Validation metric after the epoch.
    pub val_metric: f32,
    /// Cumulative wall-clock seconds at the end of this epoch.
    pub cumulative_seconds: f64,
    /// Cumulative *simulated* communication seconds (cost-model clock).
    pub cumulative_sim_comm_seconds: f64,
    /// Optimizer iterations completed so far.
    pub iterations: usize,
}

/// Outcome of a training run on one rank.
#[derive(Debug, Clone, Default)]
pub struct TrainResult {
    /// Per-epoch records.
    pub epochs: Vec<EpochRecord>,
    /// First epoch whose validation metric reached the target, with the
    /// cumulative wall seconds at that point.
    pub converged: Option<(usize, f64)>,
    /// Total wall seconds.
    pub total_seconds: f64,
    /// Total optimizer iterations.
    pub iterations: usize,
    /// K-FAC memory overhead on this rank (bytes; 0 without K-FAC).
    pub kfac_memory_bytes: usize,
    /// The live per-rank K-FAC memory meter (peak/current resident bytes
    /// per category), if K-FAC ran — the measured counterpart of
    /// `kfac_memory_bytes`'s analytic model.
    pub kfac_memory: Option<kaisa_core::MemoryMeter>,
    /// Logical K-FAC communication bytes at the storage precision.
    pub kfac_comm_bytes: u64,
    /// K-FAC stage timing (Figure 7 data), if K-FAC ran.
    pub stage_times: Option<StageTimes>,
    /// Average seconds per iteration.
    pub avg_iteration_seconds: f64,
}

impl TrainResult {
    /// Best validation metric seen.
    pub fn best_metric(&self) -> f32 {
        self.epochs.iter().map(|e| e.val_metric).fold(f32::NEG_INFINITY, f32::max)
    }

    /// Final validation loss.
    pub fn final_loss(&self) -> f32 {
        self.epochs.last().map_or(f32::NAN, |e| e.val_loss)
    }

    /// Epochs needed to reach `target` validation metric, if ever.
    pub fn epochs_to_metric(&self, target: f32) -> Option<usize> {
        self.epochs.iter().find(|e| e.val_metric >= target).map(|e| e.epoch)
    }

    /// Iterations needed to reach `target` validation metric, if ever.
    pub fn iterations_to_metric(&self, target: f32) -> Option<usize> {
        self.epochs.iter().find(|e| e.val_metric >= target).map(|e| e.iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(epoch: usize, metric: f32, iters: usize) -> EpochRecord {
        EpochRecord {
            epoch,
            train_loss: 1.0,
            train_metric: metric,
            val_loss: 1.0,
            val_metric: metric,
            cumulative_seconds: epoch as f64,
            cumulative_sim_comm_seconds: 0.0,
            iterations: iters,
        }
    }

    #[test]
    fn convergence_queries() {
        let r = TrainResult {
            epochs: vec![rec(0, 0.3, 10), rec(1, 0.6, 20), rec(2, 0.9, 30)],
            ..Default::default()
        };
        assert_eq!(r.epochs_to_metric(0.5), Some(1));
        assert_eq!(r.iterations_to_metric(0.85), Some(30));
        assert_eq!(r.epochs_to_metric(0.95), None);
        assert_eq!(r.best_metric(), 0.9);
    }
}
