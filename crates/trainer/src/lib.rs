//! # kaisa-trainer
//!
//! Distributed data-parallel training harness reproducing the paper's
//! training loop (Listing 1 + Figure 3): per-rank model replicas, disjoint
//! data shards, gradient allreduce, optional K-FAC preconditioning, a
//! standard first-order optimizer step, and per-epoch metric tracking with
//! time-to-convergence detection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ddp;
mod harness;
mod metrics;

pub use ddp::allreduce_gradients;
pub use harness::{run_step, train_distributed, train_rank, StepStats, TrainConfig};
pub use metrics::{EpochRecord, TrainResult};
