//! Data-parallel gradient synchronization.

use kaisa_comm::{CommTag, Communicator, ReduceOp};
use kaisa_nn::Model;

/// Average the model's gradients across all ranks, optionally pre-scaling by
/// `1/accum_steps` to turn a sum of micro-batch mean-losses into the mean
/// over the effective local batch.
///
/// This is the "gradient allreduce" box of Figure 3 — identical under SGD
/// and K-FAC training (K-FAC preconditions *after* this synchronization, so
/// every rank preconditions the same global gradient).
pub fn allreduce_gradients<M: Model>(model: &mut M, comm: &dyn Communicator, accum_steps: usize) {
    let mut grads = model.grads_flat();
    if accum_steps > 1 {
        let inv = 1.0 / accum_steps as f32;
        for g in grads.iter_mut() {
            *g *= inv;
        }
    }
    if comm.world_size() > 1 {
        let world_group: Vec<usize> = (0..comm.world_size()).collect();
        let pending = comm.begin_allreduce(&grads, ReduceOp::Avg, &world_group, CommTag::Ddp);
        comm.complete(pending, &mut grads);
    }
    model.set_grads_flat(&grads);
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaisa_comm::ThreadComm;
    use kaisa_nn::models::Mlp;
    use kaisa_tensor::{Matrix, Rng};

    #[test]
    fn gradients_match_across_ranks_after_allreduce() {
        let grads = ThreadComm::run(4, |comm| {
            let mut rng = Rng::seed_from_u64(42); // same init on all ranks
            let mut model = Mlp::new(&[4, 6, 2], &mut rng);
            // Different data per rank.
            let mut data_rng = Rng::seed_from_u64(100 + comm.rank() as u64);
            let x = Matrix::randn(8, 4, 1.0, &mut data_rng);
            let y: Vec<usize> = (0..8).map(|i| i % 2).collect();
            model.zero_grad();
            let _ = model.forward_backward(&x, &y);
            allreduce_gradients(&mut model, comm, 1);
            model.grads_flat()
        });
        for g in &grads[1..] {
            assert_eq!(g, &grads[0], "all ranks must hold identical gradients");
        }
    }

    #[test]
    fn accumulation_scaling() {
        let mut rng = Rng::seed_from_u64(7);
        let mut model = Mlp::new(&[3, 4, 2], &mut rng);
        let x = Matrix::randn(4, 3, 1.0, &mut rng);
        let y = vec![0usize, 1, 0, 1];
        let comm = kaisa_comm::LocalComm::new();

        // One pass, no accumulation.
        model.zero_grad();
        let _ = model.forward_backward(&x, &y);
        allreduce_gradients(&mut model, &comm, 1);
        let single = model.grads_flat();

        // Two identical micro-batches with accum scaling: same mean gradient.
        model.zero_grad();
        let _ = model.forward_backward(&x, &y);
        let _ = model.forward_backward(&x, &y);
        allreduce_gradients(&mut model, &comm, 2);
        let accum = model.grads_flat();

        for (a, b) in single.iter().zip(&accum) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
