//! The distributed training loop.

use std::time::Instant;

use kaisa_comm::{Communicator, ThreadComm};
use kaisa_core::{Kfac, KfacConfig};
use kaisa_data::{Dataset, ShardSampler};
use kaisa_nn::Model;
use kaisa_optim::{LrSchedule, Optimizer};

use crate::ddp::allreduce_gradients;
use crate::metrics::{EpochRecord, TrainResult};

/// Configuration of a training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Per-rank batch size (global batch = `world * local_batch *
    /// grad_accum`).
    pub local_batch: usize,
    /// Gradient-accumulation micro-steps per optimizer step (the BERT
    /// mechanism of Section 4.2).
    pub grad_accum: usize,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
    /// K-FAC preconditioning; `None` trains with the first-order optimizer
    /// alone (the paper's baselines).
    pub kfac: Option<KfacConfig>,
    /// Stop when the validation metric first reaches this value.
    pub target_metric: Option<f32>,
    /// Stop training once the target is reached (vs. recording and
    /// continuing, which is what the paper's curves do).
    pub stop_at_target: bool,
    /// Shard-sampler seed.
    pub seed: u64,
    /// Evaluation batch size.
    pub eval_batch: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            local_batch: 16,
            grad_accum: 1,
            schedule: LrSchedule::Constant { lr: 0.1 },
            kfac: None,
            target_metric: None,
            stop_at_target: false,
            seed: 0,
            eval_batch: 64,
        }
    }
}

/// Evaluate `model` over the whole validation set in `eval_batch` chunks.
fn evaluate_full<M, D>(model: &mut M, val: &D, eval_batch: usize) -> (f32, f32)
where
    M: Model,
    D: Dataset<Input = M::Input, Target = M::Target> + ?Sized,
{
    let mut loss = 0.0f64;
    let mut metric = 0.0f64;
    let mut batches = 0usize;
    let n = val.len();
    let mut start = 0usize;
    while start < n {
        let end = (start + eval_batch).min(n);
        let indices: Vec<usize> = (start..end).collect();
        let (x, y) = val.batch(&indices);
        let r = model.evaluate(&x, &y);
        loss += r.loss as f64;
        metric += r.metric as f64;
        batches += 1;
        start = end;
    }
    if batches == 0 {
        (f32::NAN, f32::NAN)
    } else {
        ((loss / batches as f64) as f32, (metric / batches as f64) as f32)
    }
}

/// Per-step training statistics returned by [`run_step`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepStats {
    /// Sum of micro-batch losses this step.
    pub loss_sum: f64,
    /// Sum of micro-batch metrics this step.
    pub metric_sum: f64,
    /// Micro-batches executed (== `ceil(indices / local_batch)`).
    pub micro_batches: usize,
}

/// Drive exactly one synchronous optimizer step: K-FAC capture arming,
/// micro-batch forward/backward accumulation, the optional async
/// `step_begin` lookahead, the DDP gradient allreduce, K-FAC
/// preconditioning, and the first-order update.
///
/// This is the loop body of [`train_rank`], exposed so external drivers
/// (the serve layer's job manager) can advance a job step-at-a-time —
/// pausing, checkpointing, and resuming — while executing the *identical*
/// code path as an uninterrupted run. `kfac_async` must mirror the
/// `KfacConfig::async_runtime` flag the preconditioner was built with.
// A step genuinely has this many independent inputs; bundling them into a
// struct would only move the argument list behind a constructor.
#[allow(clippy::too_many_arguments)]
pub fn run_step<M, D>(
    comm: &dyn Communicator,
    model: &mut M,
    optimizer: &mut dyn Optimizer,
    mut kfac: Option<&mut Kfac>,
    kfac_async: bool,
    train_set: &D,
    indices: &[usize],
    local_batch: usize,
    grad_accum: usize,
    lr: f32,
) -> StepStats
where
    M: Model,
    D: Dataset<Input = M::Input, Target = M::Target> + ?Sized,
{
    if let Some(kfac) = kfac.as_deref() {
        kfac.prepare(model);
    } else {
        model.set_kfac_capture(false);
    }
    model.zero_grad();

    // Gradient accumulation: split the step's indices into micro-batches;
    // gradients (and K-FAC statistics) accumulate.
    let mut stats = StepStats::default();
    for micro in indices.chunks(local_batch) {
        let (x, y) = train_set.batch(micro);
        let r = model.forward_backward(&x, &y);
        stats.loss_sum += r.loss as f64;
        stats.metric_sum += r.metric as f64;
        stats.micro_batches += 1;
    }

    if kfac_async {
        if let Some(kfac) = kfac.as_deref_mut() {
            kfac.step_begin(model, comm);
        }
    }
    allreduce_gradients(model, comm, grad_accum);
    if let Some(kfac) = kfac {
        if kfac_async {
            kfac.step_finish(model, comm, lr);
        } else {
            kfac.step(model, comm, lr);
        }
    }
    optimizer.step_model_dyn(model, lr);
    stats
}

/// Run the training loop for one rank. All ranks must construct identical
/// models (same seed) — the data-parallel contract.
pub fn train_rank<M, D>(
    comm: &dyn Communicator,
    mut model: M,
    optimizer: &mut dyn Optimizer,
    train_set: &D,
    val_set: &D,
    cfg: &TrainConfig,
) -> TrainResult
where
    M: Model,
    D: Dataset<Input = M::Input, Target = M::Target> + ?Sized,
{
    let world = comm.world_size();
    let rank = comm.rank();
    let sampler =
        ShardSampler::new(train_set.len(), world, rank, cfg.local_batch * cfg.grad_accum, cfg.seed);
    let mut kfac = cfg.kfac.clone().map(|kc| Kfac::new(kc, &mut model, comm));
    // Two-step lookahead: with the task runtime enabled, factor collectives
    // begin before the DDP gradient allreduce and drain concurrently with it.
    let kfac_async = cfg.kfac.as_ref().is_some_and(|kc| kc.async_runtime);

    let mut result = TrainResult::default();
    let start = Instant::now();
    let sim_comm_start = comm.simulated_seconds();
    let mut iterations = 0usize;
    let mut done = false;

    for epoch in 0..cfg.epochs {
        if done {
            break;
        }
        let mut epoch_loss = 0.0f64;
        let mut epoch_metric = 0.0f64;
        let mut epoch_batches = 0usize;

        for indices in sampler.epoch_batches(epoch) {
            let lr = cfg.schedule.lr_at(iterations);
            let stats = run_step(
                comm,
                &mut model,
                optimizer,
                kfac.as_mut(),
                kfac_async,
                train_set,
                &indices,
                cfg.local_batch,
                cfg.grad_accum,
                lr,
            );
            epoch_loss += stats.loss_sum;
            epoch_metric += stats.metric_sum;
            epoch_batches += stats.micro_batches;
            iterations += 1;
        }

        let (val_loss, val_metric) = evaluate_full(&mut model, val_set, cfg.eval_batch);
        let cumulative_seconds = start.elapsed().as_secs_f64();
        result.epochs.push(EpochRecord {
            epoch,
            train_loss: (epoch_loss / epoch_batches.max(1) as f64) as f32,
            train_metric: (epoch_metric / epoch_batches.max(1) as f64) as f32,
            val_loss,
            val_metric,
            cumulative_seconds,
            cumulative_sim_comm_seconds: comm.simulated_seconds() - sim_comm_start,
            iterations,
        });

        if let Some(target) = cfg.target_metric {
            if result.converged.is_none() && val_metric >= target {
                result.converged = Some((epoch, cumulative_seconds));
                if cfg.stop_at_target {
                    done = true;
                }
            }
        }
    }

    // A depth-D window may retire steps with deferred factor completes
    // still in flight; drain them so the complete-side accounting below
    // (comm bytes, stage times, meters) is final on every rank.
    if let Some(kfac) = &mut kfac {
        kfac.flush(comm);
    }
    result.total_seconds = start.elapsed().as_secs_f64();
    result.iterations = iterations;
    result.avg_iteration_seconds =
        if iterations > 0 { result.total_seconds / iterations as f64 } else { 0.0 };
    if let Some(kfac) = &kfac {
        result.kfac_memory_bytes = kfac.memory_bytes();
        result.kfac_memory = Some(kfac.memory_meter().clone());
        result.kfac_comm_bytes = kfac.comm_bytes();
        result.stage_times = Some(kfac.stage_times().clone());
    }
    result
}

/// Spawn `world` rank threads and train; returns rank 0's result.
///
/// `make_model` and `make_optimizer` run once per rank and must be
/// deterministic (same model weights on every rank).
pub fn train_distributed<M, D, FM, FO, O>(
    world: usize,
    make_model: FM,
    make_optimizer: FO,
    train_set: &D,
    val_set: &D,
    cfg: &TrainConfig,
) -> TrainResult
where
    M: Model,
    D: Dataset<Input = M::Input, Target = M::Target> + Sync,
    FM: Fn() -> M + Sync,
    FO: Fn() -> O + Sync,
    O: Optimizer,
{
    let mut results = ThreadComm::run(world, |comm| {
        let model = make_model();
        let mut optimizer = make_optimizer();
        train_rank(comm, model, &mut optimizer, train_set, val_set, cfg)
    });
    results.swap_remove(0)
}

/// Object-safe optimizer step used inside the loop (the `Optimizer` trait's
/// generic convenience method cannot be called through `&mut dyn`).
trait OptimizerDyn {
    fn step_model_dyn<M: Model>(&mut self, model: &mut M, lr: f32);
}

impl OptimizerDyn for dyn Optimizer + '_ {
    fn step_model_dyn<M: Model>(&mut self, model: &mut M, lr: f32) {
        let segments = model.param_segments();
        let mut params = model.params_flat();
        let grads = model.grads_flat();
        self.step(&mut params, &grads, &segments, lr);
        model.set_params_flat(&params);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaisa_data::GaussianBlobs;
    use kaisa_nn::models::Mlp;
    use kaisa_optim::Sgd;
    use kaisa_tensor::Rng;

    fn blobs() -> (GaussianBlobs, GaussianBlobs) {
        // Single generation split train/val so both share class centers.
        GaussianBlobs::generate(320, 8, 4, 0.3, 1).split(64)
    }

    #[test]
    fn single_rank_sgd_converges() {
        let (train, val) = blobs();
        let cfg = TrainConfig {
            epochs: 12,
            local_batch: 32,
            schedule: LrSchedule::Constant { lr: 0.3 },
            target_metric: Some(0.95),
            ..Default::default()
        };
        let result = train_distributed(
            1,
            || Mlp::new(&[8, 16, 4], &mut Rng::seed_from_u64(3)),
            Sgd::new,
            &train,
            &val,
            &cfg,
        );
        assert!(result.best_metric() > 0.95, "val acc {}", result.best_metric());
        assert!(result.converged.is_some());
        assert_eq!(result.epochs.len(), 12);
    }

    #[test]
    fn multi_rank_matches_single_rank_with_same_global_batch() {
        // 1 rank x batch 32 must equal 4 ranks x batch 8 (same global batch,
        // same seed): the defining property of synchronous data parallelism.
        let (train, val) = blobs();
        let base = TrainConfig {
            epochs: 3,
            schedule: LrSchedule::Constant { lr: 0.2 },
            ..Default::default()
        };
        let single = train_distributed(
            1,
            || Mlp::new(&[8, 16, 4], &mut Rng::seed_from_u64(3)),
            Sgd::new,
            &train,
            &val,
            &TrainConfig { local_batch: 32, ..base.clone() },
        );
        let multi = train_distributed(
            4,
            || Mlp::new(&[8, 16, 4], &mut Rng::seed_from_u64(3)),
            Sgd::new,
            &train,
            &val,
            &TrainConfig { local_batch: 8, ..base },
        );
        // Same number of optimizer steps.
        assert_eq!(single.iterations, multi.iterations);
        // Note: shards differ (different per-rank data order), so losses are
        // close but not identical; both must converge similarly.
        let d = (single.final_loss() - multi.final_loss()).abs();
        assert!(d < 0.25, "single {} vs multi {}", single.final_loss(), multi.final_loss());
    }

    #[test]
    fn kfac_enabled_training_runs_distributed() {
        let (train, val) = blobs();
        let cfg = TrainConfig {
            epochs: 4,
            local_batch: 16,
            schedule: LrSchedule::Constant { lr: 0.2 },
            kfac: Some(
                KfacConfig::builder()
                    .grad_worker_frac(0.5)
                    .factor_update_freq(2)
                    .inv_update_freq(4)
                    .build(),
            ),
            ..Default::default()
        };
        let result = train_distributed(
            4,
            || Mlp::new(&[8, 16, 4], &mut Rng::seed_from_u64(3)),
            Sgd::new,
            &train,
            &val,
            &cfg,
        );
        assert!(result.kfac_memory_bytes > 0);
        assert!(result.stage_times.is_some());
        assert!(result.best_metric() > 0.5, "metric {}", result.best_metric());
    }

    #[test]
    fn async_runtime_lookahead_matches_monolithic_kfac_step() {
        // The step_begin/step_finish split interleaves factor collectives
        // with the DDP allreduce but must not change a single bit of the
        // training trajectory.
        let (train, val) = blobs();
        let base = TrainConfig {
            epochs: 3,
            local_batch: 16,
            schedule: LrSchedule::Constant { lr: 0.2 },
            ..Default::default()
        };
        let kc =
            KfacConfig::builder().grad_worker_frac(0.5).factor_update_freq(2).inv_update_freq(4);
        let run = |kc: KfacConfig| {
            train_distributed(
                4,
                || Mlp::new(&[8, 16, 4], &mut Rng::seed_from_u64(3)),
                Sgd::new,
                &train,
                &val,
                &TrainConfig { kfac: Some(kc), ..base.clone() },
            )
        };
        let serial = run(kc.clone().build());
        // Depth 1 is the classic two-half lookahead; depth 3 retires steps
        // into the cross-iteration window. Both must be trajectory-exact.
        for depth in [1usize, 3] {
            let lookahead = run(kc.clone().async_runtime(true).cross_iter_depth(depth).build());
            assert_eq!(serial.iterations, lookahead.iterations, "depth {depth}");
            assert_eq!(serial.kfac_comm_bytes, lookahead.kfac_comm_bytes, "depth {depth}");
            for (a, b) in serial.epochs.iter().zip(&lookahead.epochs) {
                assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits(), "epoch {}", a.epoch);
                assert_eq!(a.val_loss.to_bits(), b.val_loss.to_bits(), "epoch {}", a.epoch);
                assert_eq!(a.val_metric.to_bits(), b.val_metric.to_bits(), "epoch {}", a.epoch);
            }
        }
    }

    #[test]
    fn local_opt_trains_through_the_harness() {
        // DP-KFAC through the full training loop: every rank preconditions
        // from locally-owned curvature and the harness still converges
        // (zero-factor-traffic is gated in the equivalence suite).
        use kaisa_core::DistStrategy;
        let (train, val) = blobs();
        let cfg = TrainConfig {
            epochs: 4,
            local_batch: 16,
            schedule: LrSchedule::Constant { lr: 0.2 },
            kfac: Some(
                KfacConfig::builder()
                    .strategy(DistStrategy::LocalOpt)
                    .factor_update_freq(2)
                    .inv_update_freq(4)
                    .build(),
            ),
            ..Default::default()
        };
        let result = train_distributed(
            4,
            || Mlp::new(&[8, 16, 4], &mut Rng::seed_from_u64(3)),
            Sgd::new,
            &train,
            &val,
            &cfg,
        );
        assert!(result.kfac_memory_bytes > 0);
        assert!(result.best_metric() > 0.5, "metric {}", result.best_metric());
    }

    #[test]
    fn grad_accum_preserves_convergence() {
        let (train, val) = blobs();
        let cfg = TrainConfig {
            epochs: 6,
            local_batch: 8,
            grad_accum: 4,
            schedule: LrSchedule::Constant { lr: 0.3 },
            ..Default::default()
        };
        let result = train_distributed(
            1,
            || Mlp::new(&[8, 16, 4], &mut Rng::seed_from_u64(3)),
            Sgd::new,
            &train,
            &val,
            &cfg,
        );
        assert!(result.best_metric() > 0.9, "metric {}", result.best_metric());
        // 256 samples / (8*4 per step) = 8 steps per epoch.
        assert_eq!(result.iterations, 6 * 8);
    }

    #[test]
    fn stop_at_target_halts_early() {
        let (train, val) = blobs();
        let cfg = TrainConfig {
            epochs: 50,
            local_batch: 32,
            schedule: LrSchedule::Constant { lr: 0.3 },
            target_metric: Some(0.9),
            stop_at_target: true,
            ..Default::default()
        };
        let result = train_distributed(
            1,
            || Mlp::new(&[8, 16, 4], &mut Rng::seed_from_u64(3)),
            Sgd::new,
            &train,
            &val,
            &cfg,
        );
        assert!(result.converged.is_some());
        assert!(result.epochs.len() < 50, "should stop early");
    }
}
