//! Symmetric eigendecomposition: Householder tridiagonalization (`tred2`)
//! followed by implicit-shift QL iteration (`tql2`).
//!
//! This is the EISPACK algorithm pair, computed in `f64`. For the factor
//! sizes K-FAC produces (tens to a few thousand), it is robust and its
//! O(n³) cost matches the complexity model KAISA's greedy work distribution
//! assumes (Section 3.2 of the paper).

use kaisa_tensor::Matrix;

/// Result of a symmetric eigendecomposition `M = Q diag(values) Qᵀ`.
#[derive(Debug, Clone)]
pub struct SymEig {
    /// Eigenvalues in ascending order.
    pub values: Vec<f32>,
    /// Orthonormal eigenvectors as *columns*: `vectors.get(i, j)` is
    /// component `i` of the eigenvector for `values[j]`.
    pub vectors: Matrix,
}

/// Failure of the QL iteration to converge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EigenError {
    /// Index of the eigenvalue that failed to converge.
    pub index: usize,
}

impl std::fmt::Display for EigenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QL iteration failed to converge for eigenvalue {}", self.index)
    }
}

impl std::error::Error for EigenError {}

/// Reusable `f64` workspace for [`sym_eig_with_scratch`].
///
/// The three buffers (`z` matrix, `d` diagonal, `e` off-diagonal) are fully
/// overwritten before any read on every solve, so reusing one workspace
/// across a sequence of solves — the batched queue in
/// [`crate::sym_eig_batch_timed`] does exactly this per worker — is bitwise
/// identical to fresh allocations; equal-`n` runs never reallocate.
#[derive(Debug, Default)]
pub struct EigScratch {
    z: Vec<f64>,
    d: Vec<f64>,
    e: Vec<f64>,
}

impl EigScratch {
    /// Create an empty workspace; buffers grow to the largest `n` solved.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Compute the eigendecomposition of a symmetric matrix.
///
/// Only the lower triangle of `m` is referenced (the matrix is assumed
/// symmetric; K-FAC factors are symmetric by construction). Eigenvalues are
/// returned in ascending order with matching eigenvector columns.
///
/// # Panics
/// If `m` is not square.
pub fn sym_eig(m: &Matrix) -> Result<SymEig, EigenError> {
    sym_eig_with_scratch(m, &mut EigScratch::new())
}

/// [`sym_eig`] against a caller-held workspace (see [`EigScratch`]).
///
/// # Panics
/// If `m` is not square.
pub fn sym_eig_with_scratch(m: &Matrix, scratch: &mut EigScratch) -> Result<SymEig, EigenError> {
    assert!(m.is_square(), "sym_eig requires a square matrix");
    let n = m.rows();
    if n == 0 {
        return Ok(SymEig { values: vec![], vectors: Matrix::zeros(0, 0) });
    }

    // Work in f64.
    let z = &mut scratch.z;
    z.clear();
    z.extend(m.as_slice().iter().map(|&v| v as f64));
    // Force symmetry from the lower triangle so callers can pass
    // almost-symmetric accumulations safely.
    for r in 0..n {
        for c in (r + 1)..n {
            z[r * n + c] = z[c * n + r];
        }
    }
    let d = &mut scratch.d;
    d.clear();
    d.resize(n, 0.0);
    let e = &mut scratch.e;
    e.clear();
    e.resize(n, 0.0);

    tred2(n, z, d, e);
    tql2(n, d, e, z)?;

    // Sort ascending, permuting eigenvector columns.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).unwrap_or(std::cmp::Ordering::Equal));

    let values: Vec<f32> = order.iter().map(|&i| d[i] as f32).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for row in 0..n {
            vectors.set(row, new_col, z[row * n + old_col] as f32);
        }
    }
    Ok(SymEig { values, vectors })
}

impl SymEig {
    /// Reconstruct `Q diag(values) Qᵀ` (mainly for testing/validation).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.values.len();
        let mut scaled = self.vectors.clone(); // columns scaled by eigenvalue
        for r in 0..n {
            for c in 0..n {
                scaled.set(r, c, scaled.get(r, c) * self.values[c]);
            }
        }
        scaled.matmul_nt(&self.vectors)
    }

    /// The condition number `|λ_max| / |λ_min|` (infinite if singular).
    pub fn condition_number(&self) -> f32 {
        let max = self.values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let min = self.values.iter().fold(f32::INFINITY, |m, v| m.min(v.abs()));
        if min == 0.0 {
            f32::INFINITY
        } else {
            max / min
        }
    }
}

/// `sqrt(a² + b²)` without destructive overflow.
fn pythag(a: f64, b: f64) -> f64 {
    let (absa, absb) = (a.abs(), b.abs());
    if absa > absb {
        absa * (1.0 + (absb / absa).powi(2)).sqrt()
    } else if absb == 0.0 {
        0.0
    } else {
        absb * (1.0 + (absa / absb).powi(2)).sqrt()
    }
}

/// Householder reduction of a real symmetric matrix (row-major in `a`) to
/// tridiagonal form. On output `a` holds the orthogonal transform `Q`, `d`
/// the diagonal, and `e` the sub-diagonal (with `e[0] = 0`).
fn tred2(n: usize, a: &mut [f64], d: &mut [f64], e: &mut [f64]) {
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0f64;
        if l > 0 {
            let mut scale = 0.0f64;
            for k in 0..=l {
                scale += a[i * n + k].abs();
            }
            if scale == 0.0 {
                e[i] = a[i * n + l];
            } else {
                for k in 0..=l {
                    a[i * n + k] /= scale;
                    h += a[i * n + k] * a[i * n + k];
                }
                let mut f = a[i * n + l];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                a[i * n + l] = f - g;
                f = 0.0;
                for j in 0..=l {
                    a[j * n + i] = a[i * n + j] / h;
                    let mut g = 0.0f64;
                    for k in 0..=j {
                        g += a[j * n + k] * a[i * n + k];
                    }
                    for k in (j + 1)..=l {
                        g += a[k * n + j] * a[i * n + k];
                    }
                    e[j] = g / h;
                    f += e[j] * a[i * n + j];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let f = a[i * n + j];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        a[j * n + k] -= f * e[k] + g * a[i * n + k];
                    }
                }
            }
        } else {
            e[i] = a[i * n + l];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0f64;
                for k in 0..i {
                    g += a[i * n + k] * a[k * n + j];
                }
                for k in 0..i {
                    a[k * n + j] -= g * a[k * n + i];
                }
            }
        }
        d[i] = a[i * n + i];
        a[i * n + i] = 1.0;
        for j in 0..i {
            a[j * n + i] = 0.0;
            a[i * n + j] = 0.0;
        }
    }
}

/// QL iteration with implicit shifts on a tridiagonal matrix, accumulating
/// the eigenvectors into `z` (which must hold the `tred2` transform).
fn tql2(n: usize, d: &mut [f64], e: &mut [f64], z: &mut [f64]) -> Result<(), EigenError> {
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // Find a small off-diagonal element to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 64 {
                return Err(EigenError { index: l });
            }
            // Implicit shift from the 2x2 block at l.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = pythag(g, 1.0);
            let sign_r = if g >= 0.0 { r.abs() } else { -r.abs() };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            let mut underflow = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = pythag(f, g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Recover from underflow: deflate and restart this l.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector columns.
                for k in 0..n {
                    f = z[k * n + i + 1];
                    z[k * n + i + 1] = s * z[k * n + i] + c * f;
                    z[k * n + i] = c * z[k * n + i] - s * f;
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaisa_tensor::Rng;

    fn random_symmetric(n: usize, rng: &mut Rng) -> Matrix {
        let a = Matrix::randn(n, n, 1.0, rng);
        let mut s = a.matmul_tn(&a); // aᵀa: symmetric PSD
        s.scale(1.0 / n as f32);
        s
    }

    fn assert_orthonormal(q: &Matrix, tol: f32) {
        let qtq = q.matmul_tn(q);
        let n = q.cols();
        let diff = qtq.max_abs_diff(&Matrix::identity(n));
        assert!(diff < tol, "QᵀQ deviates from I by {diff}");
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let mut m = Matrix::zeros(3, 3);
        m.set(0, 0, 3.0);
        m.set(1, 1, 1.0);
        m.set(2, 2, 2.0);
        let eig = sym_eig(&m).unwrap();
        assert_eq!(eig.values, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let m = Matrix::from_vec(2, 2, vec![2., 1., 1., 2.]);
        let eig = sym_eig(&m).unwrap();
        assert!((eig.values[0] - 1.0).abs() < 1e-5);
        assert!((eig.values[1] - 3.0).abs() < 1e-5);
        assert_orthonormal(&eig.vectors, 1e-5);
    }

    #[test]
    fn known_3x3_tridiagonal() {
        // Tridiagonal [[2,-1,0],[-1,2,-1],[0,-1,2]]: eigenvalues 2 - sqrt(2),
        // 2, 2 + sqrt(2).
        let m = Matrix::from_vec(3, 3, vec![2., -1., 0., -1., 2., -1., 0., -1., 2.]);
        let eig = sym_eig(&m).unwrap();
        let s2 = 2.0f32.sqrt();
        assert!((eig.values[0] - (2.0 - s2)).abs() < 1e-5);
        assert!((eig.values[1] - 2.0).abs() < 1e-5);
        assert!((eig.values[2] - (2.0 + s2)).abs() < 1e-5);
    }

    #[test]
    fn reconstruction_random_sizes() {
        let mut rng = Rng::seed_from_u64(21);
        for &n in &[1usize, 2, 3, 5, 8, 16, 33, 64] {
            let m = random_symmetric(n, &mut rng);
            let eig = sym_eig(&m).unwrap();
            let rec = eig.reconstruct();
            let err = rec.max_abs_diff(&m);
            let scale = m.max_abs().max(1.0);
            assert!(err < 1e-4 * scale, "n={n}: reconstruction error {err}");
            assert_orthonormal(&eig.vectors, 1e-4);
        }
    }

    #[test]
    fn eigenvalues_ascending() {
        let mut rng = Rng::seed_from_u64(22);
        let m = random_symmetric(20, &mut rng);
        let eig = sym_eig(&m).unwrap();
        for w in eig.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-6);
        }
    }

    #[test]
    fn psd_factor_has_nonnegative_eigenvalues() {
        let mut rng = Rng::seed_from_u64(23);
        let m = random_symmetric(24, &mut rng);
        let eig = sym_eig(&m).unwrap();
        for &v in &eig.values {
            assert!(v > -1e-4, "PSD matrix produced eigenvalue {v}");
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let mut rng = Rng::seed_from_u64(24);
        let m = random_symmetric(17, &mut rng);
        let eig = sym_eig(&m).unwrap();
        let tr = m.trace();
        let ev_sum: f32 = eig.values.iter().sum();
        assert!((tr - ev_sum).abs() < 1e-3 * tr.abs().max(1.0), "tr={tr} sum={ev_sum}");
    }

    #[test]
    fn rank_deficient_matrix() {
        // Outer product vvᵀ has rank 1: one eigenvalue |v|², rest 0.
        let v = [1.0f32, 2.0, 3.0, 4.0];
        let m = Matrix::outer(&v, &v);
        let eig = sym_eig(&m).unwrap();
        assert!((eig.values[3] - 30.0).abs() < 1e-4);
        for &val in &eig.values[..3] {
            assert!(val.abs() < 1e-4);
        }
    }

    #[test]
    fn identity_eigenvectors() {
        let eig = sym_eig(&Matrix::identity(6)).unwrap();
        for &v in &eig.values {
            assert!((v - 1.0).abs() < 1e-6);
        }
        assert_orthonormal(&eig.vectors, 1e-6);
    }

    #[test]
    fn negative_eigenvalues_handled() {
        // [[0, 1], [1, 0]]: eigenvalues -1 and 1.
        let m = Matrix::from_vec(2, 2, vec![0., 1., 1., 0.]);
        let eig = sym_eig(&m).unwrap();
        assert!((eig.values[0] + 1.0).abs() < 1e-6);
        assert!((eig.values[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_and_single() {
        let e0 = sym_eig(&Matrix::zeros(0, 0)).unwrap();
        assert!(e0.values.is_empty());
        let m = Matrix::from_vec(1, 1, vec![5.0]);
        let e1 = sym_eig(&m).unwrap();
        assert_eq!(e1.values, vec![5.0]);
        assert_eq!(e1.vectors.get(0, 0).abs(), 1.0);
    }

    #[test]
    fn ill_conditioned_but_damped_is_stable() {
        // Mimics the K-FAC damping path: a nearly-singular factor plus γI
        // must produce strictly positive eigenvalues ≥ γ.
        let v = [1.0f32, 1.0, 1.0];
        let mut m = Matrix::outer(&v, &v);
        m.add_diag(0.003);
        let eig = sym_eig(&m).unwrap();
        for &val in &eig.values {
            assert!(val >= 0.0029, "damped eigenvalue {val} below γ");
        }
    }
}
