//! Batched symmetric eigensolves: workers drain a shared queue of factor
//! decompositions with per-worker reused scratch.
//!
//! A K-FAC decomposition step hands each rank a *set* of independent factor
//! eigendecompositions (one per Kronecker factor the rank owns — many of
//! them equal-`n`, since a network repeats layer shapes). Solving them one
//! [`crate::sym_eig`] call at a time leaves cores idle and reallocates the
//! `f64` workspace per call. Here the whole set drains through an atomic
//! work queue instead: jobs are claimed largest-first (LPT over the O(n³)
//! cost model, so the expensive solves can't strand at the tail), each
//! worker reuses one [`EigScratch`] across every job it claims (equal-`n`
//! runs never touch the allocator), and results land in input order.
//!
//! **Determinism contract:** each solve is bitwise identical to
//! [`crate::sym_eig`] on the same input — the workspace is fully
//! overwritten per job, so sharing it changes nothing — and the output
//! permutation is fixed by input order, so the worker count and claim
//! interleaving are unobservable. The equivalence suites in `kaisa-core`
//! gate this across every executor.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use kaisa_tensor::Matrix;

use crate::eigen::{sym_eig_with_scratch, EigScratch, EigenError, SymEig};

/// One worker's claimed results: `(input index, solve result, seconds)`.
type WorkerResults = Vec<(usize, Result<SymEig, EigenError>, f64)>;

/// Worker cap from the `KAISA_EIG_BATCH` environment variable, read once
/// per process. `0` (or unset, or unparsable) means one worker per
/// available core; `1` drains the queue inline on the calling thread.
pub fn eig_batch_workers() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("KAISA_EIG_BATCH").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
    })
}

/// Resolve an effective worker count: an explicit `requested` cap wins,
/// `0` defers to [`eig_batch_workers`] and then the core count, and the
/// result never exceeds the number of jobs.
fn resolve_workers(requested: usize, jobs: usize) -> usize {
    let cap = match requested {
        0 => match eig_batch_workers() {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            env => env,
        },
        explicit => explicit,
    };
    cap.clamp(1, jobs.max(1))
}

/// Batch-solve every matrix in `inputs`, returning `(result, seconds)` per
/// input **in input order**. `max_workers` caps the queue workers (`0` =
/// auto via `KAISA_EIG_BATCH` / core count). The per-job wall-clock lets
/// callers attribute compute time to the owning layer.
pub fn sym_eig_batch_timed(
    inputs: &[&Matrix],
    max_workers: usize,
) -> Vec<(Result<SymEig, EigenError>, f64)> {
    let jobs = inputs.len();
    if jobs == 0 {
        return Vec::new();
    }
    // LPT claim order: largest n first (ties keep input order), so the
    // O(n³)-dominant solves start immediately and equal-n jobs drain
    // consecutively from one worker's scratch.
    let mut order: Vec<usize> = (0..jobs).collect();
    order.sort_by(|&x, &y| inputs[y].rows().cmp(&inputs[x].rows()).then(x.cmp(&y)));
    let workers = resolve_workers(max_workers, jobs);

    let mut out: Vec<Option<(Result<SymEig, EigenError>, f64)>> = (0..jobs).map(|_| None).collect();
    if workers == 1 {
        let mut scratch = EigScratch::new();
        for &j in &order {
            let start = Instant::now();
            let result = sym_eig_with_scratch(inputs[j], &mut scratch);
            out[j] = Some((result, start.elapsed().as_secs_f64()));
        }
    } else {
        let next = AtomicUsize::new(0);
        let solved: Vec<WorkerResults> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let order = &order;
                    scope.spawn(move || {
                        let mut scratch = EigScratch::new();
                        let mut local = Vec::new();
                        loop {
                            let slot = next.fetch_add(1, Ordering::Relaxed);
                            if slot >= order.len() {
                                break;
                            }
                            let j = order[slot];
                            let start = Instant::now();
                            let result = sym_eig_with_scratch(inputs[j], &mut scratch);
                            local.push((j, result, start.elapsed().as_secs_f64()));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("eigensolve batch worker panicked"))
                .collect()
        });
        for worker_results in solved {
            for (j, result, seconds) in worker_results {
                out[j] = Some((result, seconds));
            }
        }
    }
    out.into_iter().map(|slot| slot.expect("every queued job solved exactly once")).collect()
}

/// [`sym_eig_batch_timed`] without the timings, with auto worker count.
pub fn sym_eig_batch(inputs: &[&Matrix]) -> Vec<Result<SymEig, EigenError>> {
    sym_eig_batch_timed(inputs, 0).into_iter().map(|(result, _)| result).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym_eig;
    use kaisa_tensor::Rng;

    fn random_symmetric(n: usize, rng: &mut Rng) -> Matrix {
        let a = Matrix::randn(n, n, 1.0, rng);
        let mut s = a.matmul_tn(&a);
        s.scale(1.0 / n as f32);
        s
    }

    #[test]
    fn batch_is_bitwise_identical_to_serial() {
        let mut rng = Rng::seed_from_u64(7);
        // Mixed sizes with equal-n runs, like a real layer inventory.
        let mats: Vec<Matrix> = [5usize, 16, 16, 3, 16, 8, 8, 1, 24]
            .iter()
            .map(|&n| random_symmetric(n, &mut rng))
            .collect();
        let refs: Vec<&Matrix> = mats.iter().collect();
        for workers in [0usize, 1, 2, 5] {
            let batched = sym_eig_batch_timed(&refs, workers);
            assert_eq!(batched.len(), mats.len());
            for (m, (result, seconds)) in mats.iter().zip(&batched) {
                let serial = sym_eig(m).unwrap();
                let eig = result.as_ref().unwrap();
                assert_eq!(eig.values.len(), serial.values.len());
                for (a, b) in eig.values.iter().zip(&serial.values) {
                    assert_eq!(a.to_bits(), b.to_bits(), "workers={workers}");
                }
                assert_eq!(
                    eig.vectors.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    serial.vectors.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "workers={workers}"
                );
                assert!(*seconds >= 0.0);
            }
        }
    }

    #[test]
    fn scratch_reuse_is_bitwise_stable() {
        // Solving B after a larger A through one scratch must equal a fresh
        // solve of B: the workspace is fully overwritten per job.
        let mut rng = Rng::seed_from_u64(8);
        let big = random_symmetric(32, &mut rng);
        let small = random_symmetric(7, &mut rng);
        let mut scratch = EigScratch::new();
        let _ = sym_eig_with_scratch(&big, &mut scratch).unwrap();
        let reused = sym_eig_with_scratch(&small, &mut scratch).unwrap();
        let fresh = sym_eig(&small).unwrap();
        assert_eq!(
            reused.vectors.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            fresh.vectors.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_and_single_batches() {
        assert!(sym_eig_batch(&[]).is_empty());
        let mut rng = Rng::seed_from_u64(9);
        let m = random_symmetric(6, &mut rng);
        let one = sym_eig_batch(&[&m]);
        assert_eq!(one.len(), 1);
        assert!(one[0].is_ok());
    }
}
