//! Cholesky factorization and SPD solves.
//!
//! Used for the *direct inverse* preconditioning baseline of Eq. 12–14 of the
//! KAISA paper, which the eigendecomposition method (Section 2.1.3) replaces.
//! Keeping both lets the repository reproduce the paper's design ablation.

use kaisa_tensor::Matrix;

/// Failure of the Cholesky factorization (matrix not positive definite).
#[derive(Debug, Clone, PartialEq)]
pub struct CholeskyError {
    /// The pivot index at which positive-definiteness failed.
    pub pivot: usize,
    /// The offending (non-positive) pivot value.
    pub value: f32,
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix not positive definite at pivot {} (value {})", self.pivot, self.value)
    }
}

impl std::error::Error for CholeskyError {}

/// Lower-triangular Cholesky factor `L` with `M = L Lᵀ`.
///
/// Only the lower triangle of `m` is referenced. Computation is in `f64`.
pub fn cholesky(m: &Matrix) -> Result<Matrix, CholeskyError> {
    assert!(m.is_square(), "cholesky requires a square matrix");
    let n = m.rows();
    let mut l = vec![0.0f64; n * n];
    for j in 0..n {
        let mut diag = m.get(j, j) as f64;
        for k in 0..j {
            diag -= l[j * n + k] * l[j * n + k];
        }
        if diag <= 0.0 {
            return Err(CholeskyError { pivot: j, value: diag as f32 });
        }
        let ljj = diag.sqrt();
        l[j * n + j] = ljj;
        for i in (j + 1)..n {
            let mut v = m.get(i, j) as f64;
            for k in 0..j {
                v -= l[i * n + k] * l[j * n + k];
            }
            l[i * n + j] = v / ljj;
        }
    }
    Ok(Matrix::from_vec(n, n, l.into_iter().map(|v| v as f32).collect()))
}

/// Solve `M x = b` for SPD `M` given its Cholesky factor `L`.
#[allow(clippy::needless_range_loop)]
pub fn cholesky_solve(l: &Matrix, b: &[f32]) -> Vec<f32> {
    let n = l.rows();
    assert_eq!(b.len(), n, "rhs length mismatch");
    // Forward substitution L y = b.
    let mut y = vec![0.0f64; n];
    for i in 0..n {
        let mut v = b[i] as f64;
        for k in 0..i {
            v -= l.get(i, k) as f64 * y[k];
        }
        y[i] = v / l.get(i, i) as f64;
    }
    // Back substitution Lᵀ x = y.
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut v = y[i];
        for k in (i + 1)..n {
            v -= l.get(k, i) as f64 * x[k];
        }
        x[i] = v / l.get(i, i) as f64;
    }
    x.into_iter().map(|v| v as f32).collect()
}

/// Inverse of an SPD matrix via Cholesky (column-by-column solve).
#[allow(clippy::needless_range_loop)]
pub fn spd_inverse(m: &Matrix) -> Result<Matrix, CholeskyError> {
    let n = m.rows();
    let l = cholesky(m)?;
    let mut inv = Matrix::zeros(n, n);
    let mut e = vec![0.0f32; n];
    for col in 0..n {
        e[col] = 1.0;
        let x = cholesky_solve(&l, &e);
        for row in 0..n {
            inv.set(row, col, x[row]);
        }
        e[col] = 0.0;
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaisa_tensor::Rng;

    fn random_spd(n: usize, rng: &mut Rng) -> Matrix {
        let a = Matrix::randn(n, n, 1.0, rng);
        let mut s = a.matmul_tn(&a);
        s.scale(1.0 / n as f32);
        s.add_diag(0.1);
        s
    }

    #[test]
    fn factor_reconstructs() {
        let mut rng = Rng::seed_from_u64(31);
        for &n in &[1usize, 2, 5, 16, 40] {
            let m = random_spd(n, &mut rng);
            let l = cholesky(&m).unwrap();
            let rec = l.matmul_nt(&l);
            assert!(rec.max_abs_diff(&m) < 1e-4, "n={n}");
        }
    }

    #[test]
    fn factor_is_lower_triangular() {
        let mut rng = Rng::seed_from_u64(32);
        let m = random_spd(8, &mut rng);
        let l = cholesky(&m).unwrap();
        for r in 0..8 {
            for c in (r + 1)..8 {
                assert_eq!(l.get(r, c), 0.0);
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let mut rng = Rng::seed_from_u64(33);
        let m = random_spd(12, &mut rng);
        let x_true: Vec<f32> = (0..12).map(|i| (i as f32 - 5.0) * 0.3).collect();
        // b = M x
        let xm = Matrix::from_vec(12, 1, x_true.clone());
        let b = m.matmul(&xm);
        let l = cholesky(&m).unwrap();
        let x = cholesky_solve(&l, b.as_slice());
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-3, "{got} vs {want}");
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let mut rng = Rng::seed_from_u64(34);
        let m = random_spd(10, &mut rng);
        let inv = spd_inverse(&m).unwrap();
        let prod = m.matmul(&inv);
        assert!(prod.max_abs_diff(&Matrix::identity(10)) < 1e-3);
    }

    #[test]
    fn non_pd_matrix_rejected() {
        let m = Matrix::from_vec(2, 2, vec![1., 2., 2., 1.]); // eigenvalues 3, -1
        assert!(cholesky(&m).is_err());
    }

    #[test]
    fn rank_deficient_rejected_without_damping_but_ok_with() {
        let v = [1.0f32, 2.0, 3.0];
        let m = Matrix::outer(&v, &v);
        assert!(cholesky(&m).is_err(), "rank-1 matrix is not PD");
        let mut damped = m.clone();
        damped.add_diag(0.003); // the K-FAC Tikhonov path
        assert!(cholesky(&damped).is_ok());
    }
}
