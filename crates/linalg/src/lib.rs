//! # kaisa-linalg
//!
//! Dense linear algebra kernels used by the KAISA K-FAC preconditioner:
//!
//! * [`sym_eig`] — symmetric eigendecomposition (Householder tridiagonal
//!   reduction + implicit-shift QL), the paper's replacement for matrix
//!   inversion (Section 2.1.3). Factor eigendecompositions produce real
//!   eigenvalues and orthogonal eigenvectors because the Kronecker factors
//!   `A = aᵀa` and `G = gᵀg` are symmetric positive semi-definite.
//! * [`sym_eig_batch_timed`] / [`sym_eig_batch`] — queue-drained batched
//!   solves of many independent factors with per-worker reused
//!   [`EigScratch`], bitwise identical to per-call [`sym_eig`]; worker cap
//!   via `KAISA_EIG_BATCH` or the caller.
//! * [`cholesky`] / [`cholesky_solve`] / [`spd_inverse`] — SPD factorizations
//!   for the direct damped-inverse preconditioning baseline (Eq. 12–14),
//!   implemented so the eigendecomposition-vs-inverse ablation in the paper
//!   can be reproduced.
//! * [`lu_inverse`] — general matrix inverse with partial pivoting.
//! * [`pack_upper`] / [`unpack_upper`] — symmetric triangular packing used by
//!   KAISA's triangular factor communication (Section 4.3).
//!
//! All decompositions compute internally in `f64` for stability (mirroring
//! the paper's practice of casting half-precision factors to single precision
//! before eigendecomposition) and return `f32` results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod cholesky;
mod eigen;
mod inverse;
mod triangular;

pub use batch::{eig_batch_workers, sym_eig_batch, sym_eig_batch_timed};
pub use cholesky::{cholesky, cholesky_solve, spd_inverse, CholeskyError};
pub use eigen::{sym_eig, sym_eig_with_scratch, EigScratch, EigenError, SymEig};
pub use inverse::lu_inverse;
pub use triangular::{pack_upper, packed_len, unpack_upper};
