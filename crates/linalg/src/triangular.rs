//! Symmetric triangular packing.
//!
//! The Kronecker factors are symmetric, so KAISA's triangular factor
//! communication (paper Section 4.3) sends only the upper triangle —
//! `n(n+1)/2` elements instead of `n²` — and reconstructs the full matrix
//! before the eigendecomposition stage. The paper found the pack/unpack
//! overhead can outweigh the bandwidth savings on latency-bound networks;
//! both paths are implemented here so the tradeoff can be measured.

use kaisa_tensor::Matrix;

/// Number of packed elements for an `n x n` symmetric matrix.
pub const fn packed_len(n: usize) -> usize {
    n * (n + 1) / 2
}

/// Pack the upper triangle (including the diagonal) of a symmetric matrix
/// into a flat row-major triangle.
///
/// # Panics
/// If `m` is not square.
pub fn pack_upper(m: &Matrix) -> Vec<f32> {
    assert!(m.is_square(), "pack_upper requires a square matrix");
    let n = m.rows();
    let mut out = Vec::with_capacity(packed_len(n));
    for r in 0..n {
        out.extend_from_slice(&m.row(r)[r..]);
    }
    out
}

/// Reconstruct the full symmetric matrix from a packed upper triangle.
///
/// # Panics
/// If `packed.len() != packed_len(n)`.
pub fn unpack_upper(packed: &[f32], n: usize) -> Matrix {
    assert_eq!(packed.len(), packed_len(n), "packed length mismatch for n={n}");
    let mut m = Matrix::zeros(n, n);
    let mut idx = 0usize;
    for r in 0..n {
        for c in r..n {
            m.set(r, c, packed[idx]);
            m.set(c, r, packed[idx]);
            idx += 1;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaisa_tensor::Rng;

    #[test]
    fn packed_len_formula() {
        assert_eq!(packed_len(0), 0);
        assert_eq!(packed_len(1), 1);
        assert_eq!(packed_len(4), 10);
        assert_eq!(packed_len(100), 5050);
    }

    #[test]
    fn roundtrip_symmetric() {
        let mut rng = Rng::seed_from_u64(51);
        for &n in &[0usize, 1, 2, 7, 32] {
            let a = Matrix::randn(n, n.max(1), 1.0, &mut rng);
            let mut s = if n == 0 { Matrix::zeros(0, 0) } else { a.matmul_nt(&a) };
            if n > 0 {
                s.symmetrize();
            }
            let packed = pack_upper(&s);
            assert_eq!(packed.len(), packed_len(n));
            let back = unpack_upper(&packed, n);
            assert_eq!(back, s, "n={n}");
        }
    }

    #[test]
    fn volume_saving_is_roughly_half() {
        let n = 1000;
        let full = n * n;
        let packed = packed_len(n);
        let ratio = packed as f64 / full as f64;
        assert!(ratio < 0.51 && ratio > 0.49);
    }
}
