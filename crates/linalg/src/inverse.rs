//! General matrix inverse via LU decomposition with partial pivoting.

use kaisa_tensor::Matrix;

/// Invert a general square matrix. Returns `None` if singular to working
/// precision. Computation is in `f64`.
#[allow(clippy::needless_range_loop)]
pub fn lu_inverse(m: &Matrix) -> Option<Matrix> {
    assert!(m.is_square(), "lu_inverse requires a square matrix");
    let n = m.rows();
    if n == 0 {
        return Some(Matrix::zeros(0, 0));
    }
    let mut a: Vec<f64> = m.as_slice().iter().map(|&v| v as f64).collect();
    let mut perm: Vec<usize> = (0..n).collect();

    // LU with partial pivoting, in place.
    for col in 0..n {
        // Pivot selection.
        let mut pivot_row = col;
        let mut pivot_val = a[col * n + col].abs();
        for row in (col + 1)..n {
            let v = a[row * n + col].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = row;
            }
        }
        if pivot_val < 1e-300 {
            return None;
        }
        if pivot_row != col {
            for k in 0..n {
                a.swap(col * n + k, pivot_row * n + k);
            }
            perm.swap(col, pivot_row);
        }
        let inv_pivot = 1.0 / a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] * inv_pivot;
            a[row * n + col] = factor;
            for k in (col + 1)..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
        }
    }

    // Solve for each unit vector to build the inverse.
    let mut inv = Matrix::zeros(n, n);
    let mut y = vec![0.0f64; n];
    let mut x = vec![0.0f64; n];
    for col in 0..n {
        // Forward substitution with the permuted unit rhs.
        for i in 0..n {
            let mut v = if perm[i] == col { 1.0 } else { 0.0 };
            for k in 0..i {
                v -= a[i * n + k] * y[k];
            }
            y[i] = v;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut v = y[i];
            for k in (i + 1)..n {
                v -= a[i * n + k] * x[k];
            }
            x[i] = v / a[i * n + i];
        }
        for row in 0..n {
            inv.set(row, col, x[row] as f32);
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaisa_tensor::Rng;

    #[test]
    fn inverse_of_identity() {
        let inv = lu_inverse(&Matrix::identity(5)).unwrap();
        assert!(inv.max_abs_diff(&Matrix::identity(5)) < 1e-6);
    }

    #[test]
    fn known_2x2() {
        let m = Matrix::from_vec(2, 2, vec![4., 7., 2., 6.]);
        let inv = lu_inverse(&m).unwrap();
        let expect = Matrix::from_vec(2, 2, vec![0.6, -0.7, -0.2, 0.4]);
        assert!(inv.max_abs_diff(&expect) < 1e-5);
    }

    #[test]
    fn random_matrices_invert() {
        let mut rng = Rng::seed_from_u64(41);
        for &n in &[1usize, 3, 8, 20] {
            let mut m = Matrix::randn(n, n, 1.0, &mut rng);
            m.add_diag(2.0); // keep well-conditioned
            let inv = lu_inverse(&m).unwrap();
            let prod = m.matmul(&inv);
            assert!(prod.max_abs_diff(&Matrix::identity(n)) < 1e-3, "n={n}");
        }
    }

    #[test]
    fn singular_matrix_returns_none() {
        let m = Matrix::from_vec(2, 2, vec![1., 2., 2., 4.]);
        assert!(lu_inverse(&m).is_none());
    }

    #[test]
    fn needs_pivoting() {
        // Zero in the top-left: fails without partial pivoting.
        let m = Matrix::from_vec(2, 2, vec![0., 1., 1., 0.]);
        let inv = lu_inverse(&m).unwrap();
        assert!(inv.max_abs_diff(&m) < 1e-6, "permutation matrix is its own inverse");
    }
}
