//! Property-based tests on the decompositions: reconstruction,
//! orthogonality, and packing invariants over random symmetric matrices.

use kaisa_linalg::{
    cholesky, lu_inverse, pack_upper, packed_len, sym_eig, sym_eig_batch_timed, unpack_upper,
};
use kaisa_tensor::{Matrix, Rng};
use proptest::prelude::*;

fn random_symmetric(n: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from_u64(seed);
    let a = Matrix::randn(n, n, 1.0, &mut rng);
    let mut s = a.matmul_tn(&a);
    s.scale(1.0 / n as f32);
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn eig_reconstructs(n in 1usize..24, seed in any::<u64>()) {
        let m = random_symmetric(n, seed);
        let eig = sym_eig(&m).unwrap();
        let rec = eig.reconstruct();
        let scale = m.max_abs().max(1.0);
        prop_assert!(rec.max_abs_diff(&m) < 2e-4 * scale,
            "n={} err={}", n, rec.max_abs_diff(&m));
    }

    #[test]
    fn eig_vectors_orthonormal(n in 1usize..24, seed in any::<u64>()) {
        let m = random_symmetric(n, seed);
        let eig = sym_eig(&m).unwrap();
        let qtq = eig.vectors.matmul_tn(&eig.vectors);
        prop_assert!(qtq.max_abs_diff(&Matrix::identity(n)) < 1e-3);
    }

    #[test]
    fn eig_values_sorted_and_trace_preserved(n in 1usize..24, seed in any::<u64>()) {
        let m = random_symmetric(n, seed);
        let eig = sym_eig(&m).unwrap();
        for w in eig.values.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-5);
        }
        let sum: f32 = eig.values.iter().sum();
        prop_assert!((sum - m.trace()).abs() < 1e-2 * m.trace().abs().max(1.0));
    }

    #[test]
    fn cholesky_reconstructs_with_damping(n in 1usize..20, seed in any::<u64>(), damping in 0.001f32..1.0) {
        let mut m = random_symmetric(n, seed);
        m.add_diag(damping);
        let l = cholesky(&m).unwrap();
        let rec = l.matmul_nt(&l);
        prop_assert!(rec.max_abs_diff(&m) < 1e-3 * m.max_abs().max(1.0));
    }

    #[test]
    fn lu_inverse_is_inverse(n in 1usize..16, seed in any::<u64>()) {
        let mut m = random_symmetric(n, seed);
        m.add_diag(1.0); // keep well-conditioned
        let inv = lu_inverse(&m).unwrap();
        let prod = m.matmul(&inv);
        prop_assert!(prod.max_abs_diff(&Matrix::identity(n)) < 1e-2);
    }

    #[test]
    fn pack_roundtrip(n in 1usize..32, seed in any::<u64>()) {
        let m = random_symmetric(n, seed);
        let packed = pack_upper(&m);
        prop_assert_eq!(packed.len(), packed_len(n));
        prop_assert_eq!(unpack_upper(&packed, n), m);
    }

    #[test]
    fn batched_eig_bitwise_matches_serial(
        sizes in prop::collection::vec(1usize..20, 1..8),
        seed in any::<u64>(),
        workers in 0usize..5,
    ) {
        // The batch queue (any worker count, shared per-worker scratch,
        // LPT claim order) must return exactly what per-call sym_eig
        // returns, in input order — worker interleaving unobservable.
        let mats: Vec<Matrix> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| random_symmetric(n, seed.wrapping_add(i as u64)))
            .collect();
        let refs: Vec<&Matrix> = mats.iter().collect();
        let batched = sym_eig_batch_timed(&refs, workers);
        prop_assert_eq!(batched.len(), mats.len());
        for (m, (result, _)) in mats.iter().zip(&batched) {
            let serial = sym_eig(m).unwrap();
            let eig = result.as_ref().unwrap();
            for (a, b) in eig.values.iter().zip(&serial.values) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in eig.vectors.as_slice().iter().zip(serial.vectors.as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn damped_eigenvalues_bounded_below(n in 2usize..16, seed in any::<u64>(), damping in 0.001f32..0.1) {
        // The K-FAC stability guarantee: eigenvalues of M + γI are ≥ γ for
        // PSD M, so the preconditioner's denominators never vanish.
        let mut m = random_symmetric(n, seed);
        m.add_diag(damping);
        let eig = sym_eig(&m).unwrap();
        for &v in &eig.values {
            prop_assert!(v >= damping * 0.9, "eigenvalue {} below damping {}", v, damping);
        }
    }
}
